#include "attacks/report.hpp"

#include <algorithm>
#include <cstdio>

namespace rac::attacks {

namespace {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string num(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6f", v);
  return buf;
}

std::string num_array(const std::vector<double>& xs) {
  std::string out = "[";
  for (std::size_t i = 0; i < xs.size(); ++i) {
    if (i > 0) out += ", ";
    out += num(xs[i]);
  }
  out += "]";
  return out;
}

std::string endpoint_array(const std::vector<EndpointId>& xs) {
  std::string out = "[";
  for (std::size_t i = 0; i < xs.size(); ++i) {
    if (i > 0) out += ", ";
    out += std::to_string(xs[i]);
  }
  out += "]";
  return out;
}

const char* mode_name(ObserverMode m) {
  switch (m) {
    case ObserverMode::kGlobal:
      return "global";
    case ObserverMode::kFraction:
      return "fraction";
    case ObserverMode::kNone:
      break;
  }
  return "none";
}

/// Element-wise mean of per-run curves, truncated to the shortest run.
/// merge-order: `curves` is iterated in the callers' seed order, so the
/// FP sums always add runs in one canonical order — the aggregate block
/// is byte-stable across --jobs.
std::vector<double> aggregate_mean_curve(
    const std::vector<const std::vector<double>*>& curves) {
  std::vector<double> out;
  if (curves.empty()) return out;
  std::size_t len = curves.front()->size();
  for (const auto* c : curves) len = std::min(len, c->size());
  for (std::size_t k = 0; k < len; ++k) {
    double sum = 0.0;
    for (const auto* c : curves) sum += (*c)[k];
    out.push_back(sum / static_cast<double>(curves.size()));
  }
  return out;
}

std::string intersection_json(const IntersectionResult& r,
                              const std::string& indent) {
  std::string out = "{\n";
  out += indent + "  \"targets\": " + endpoint_array(r.targets) + ",\n";
  out += indent + "  \"set_size\": " + num_array(r.set_size) + ",\n";
  out += indent + "  \"expected\": " + num_array(r.expected) + ",\n";
  out += indent + "  \"entropy_bits\": " + num_array(r.entropy_bits) + ",\n";
  out += indent + "  \"retention_hat\": " + num(r.retention_hat) + ",\n";
  out += indent + "  \"max_rel_deviation\": " + num(r.max_rel_deviation) +
         ",\n";
  out += indent + "  \"calibrated\": " +
         std::string(r.calibrated ? "true" : "false") + "\n";
  out += indent + "}";
  return out;
}

std::string predecessor_json(const PredecessorResult& r,
                             const std::string& indent) {
  std::string out = "{\n";
  out += indent + "  \"targets\": " + endpoint_array(r.targets) + ",\n";
  out += indent + "  \"rounds\": " + std::to_string(r.rounds) + ",\n";
  out += indent + "  \"shannon_bits\": " + num_array(r.shannon_bits) + ",\n";
  out += indent + "  \"min_entropy_bits\": " + num_array(r.min_entropy_bits) +
         ",\n";
  out += indent + "  \"support\": " + num_array(r.support) + ",\n";
  out += indent + "  \"precision_at_1\": " + num(r.precision_at_1) + ",\n";
  out += indent + "  \"precision_at_3\": " + num(r.precision_at_3) + "\n";
  out += indent + "}";
  return out;
}

std::string first_spy_json(const FirstSpyResult& r,
                           const std::string& indent) {
  std::string out = "{\n";
  out += indent + "  \"waves_total\": " + std::to_string(r.waves_total) +
         ",\n";
  out += indent + "  \"waves_attributed\": " +
         std::to_string(r.waves_attributed) + ",\n";
  out += indent + "  \"waves_correct\": " + std::to_string(r.waves_correct) +
         ",\n";
  out += indent + "  \"precision\": " + num(r.precision) + ",\n";
  out += indent + "  \"chance\": " + num(r.chance) + ",\n";
  out += indent + "  \"cumulative_precision\": " +
         num_array(r.cumulative_precision) + "\n";
  out += indent + "}";
  return out;
}

}  // namespace

std::string report_json(const ReportMeta& meta,
                        const std::vector<AttackReport>& runs) {
  const ObserverSpec& spec = meta.spec;
  std::string out;
  out += "{\n";
  out += "  \"schema\": \"rac.attacks.report/1\",\n";
  out += "  \"scenario\": {\n";
  out += "    \"name\": \"" + json_escape(meta.scenario) + "\",\n";
  out += "    \"nodes\": " + std::to_string(meta.nodes) + ",\n";
  out += "    \"seeds\": " + std::to_string(meta.seeds) + ",\n";
  out += "    \"base_seed\": " + std::to_string(meta.base_seed) + ",\n";
  out += "    \"duration_ms\": " + std::to_string(meta.duration_ms) + ",\n";
  out += "    \"traffic\": \"" + json_escape(meta.traffic) + "\",\n";
  out += "    \"kernel\": \"" + json_escape(meta.kernel) + "\"\n";
  out += "  },\n";
  out += "  \"observer\": {\n";
  out += "    \"mode\": \"" + std::string(mode_name(spec.mode)) + "\",\n";
  out += "    \"fraction\": " + num(spec.fraction) + ",\n";
  out += "    \"window_ms\": " + num(to_seconds(spec.window) * 1e3) + ",\n";
  out += "    \"clock_ms\": " + num(to_seconds(spec.clock) * 1e3) + ",\n";
  out += "    \"stride\": " + std::to_string(spec.stride) + ",\n";
  out += "    \"max_observations\": " +
         std::to_string(spec.max_observations) + ",\n";
  out += "    \"targets\": " + std::to_string(spec.targets) + ",\n";
  out += "    \"data_floor\": " + std::to_string(spec.data_floor) + ",\n";
  out += "    \"tolerance\": " + num(spec.tolerance) + ",\n";
  out += "    \"attacks\": [";
  {
    std::vector<std::string> names;
    if (spec.run_intersection) names.emplace_back("intersection");
    if (spec.run_predecessor) names.emplace_back("predecessor");
    if (spec.run_first_spy) names.emplace_back("first_spy");
    for (std::size_t i = 0; i < names.size(); ++i) {
      if (i > 0) out += ", ";
      out += "\"" + names[i] + "\"";
    }
  }
  out += "]\n";
  out += "  },\n";
  out += "  \"runs\": [\n";
  for (std::size_t r = 0; r < runs.size(); ++r) {
    const AttackReport& run = runs[r];
    out += "    {\n";
    out += "      \"seed\": " + std::to_string(run.seed) + ",\n";
    out += "      \"nodes\": " + std::to_string(run.nodes) + ",\n";
    out += "      \"compromised\": " + std::to_string(run.compromised) +
           ",\n";
    out += "      \"observations\": " + std::to_string(run.observations) +
           ",\n";
    out += "      \"tapped\": " + std::to_string(run.tapped) + ",\n";
    out += "      \"intersection\": ";
    out += run.intersection ? intersection_json(*run.intersection, "      ")
                            : std::string("null");
    out += ",\n";
    out += "      \"predecessor\": ";
    out += run.predecessor ? predecessor_json(*run.predecessor, "      ")
                           : std::string("null");
    out += ",\n";
    out += "      \"first_spy\": ";
    out += run.first_spy ? first_spy_json(*run.first_spy, "      ")
                         : std::string("null");
    out += "\n";
    out += "    }";
    out += r + 1 < runs.size() ? ",\n" : "\n";
  }
  out += "  ],\n";

  // Aggregate over runs (seed order — see aggregate_mean_curve).
  std::vector<const std::vector<double>*> set_curves;
  std::vector<const std::vector<double>*> expected_curves;
  double retention_sum = 0.0;
  double worst_deviation = 0.0;
  bool all_calibrated = true;
  std::size_t intersection_runs = 0;
  double p1_sum = 0.0;
  double p3_sum = 0.0;
  double final_shannon_sum = 0.0;
  std::size_t predecessor_runs = 0;
  double fs_precision_sum = 0.0;
  double fs_chance_sum = 0.0;
  std::size_t first_spy_runs = 0;
  // merge-order: `runs` is seed-ordered by every caller (the campaign
  // stores results at seed slots), so these FP sums always accumulate in
  // one canonical order regardless of --jobs.
  for (const AttackReport& run : runs) {
    if (run.intersection) {
      ++intersection_runs;
      set_curves.push_back(&run.intersection->set_size);
      expected_curves.push_back(&run.intersection->expected);
      retention_sum += run.intersection->retention_hat;
      worst_deviation =
          std::max(worst_deviation, run.intersection->max_rel_deviation);
      all_calibrated = all_calibrated && run.intersection->calibrated;
    }
    if (run.predecessor) {
      ++predecessor_runs;
      p1_sum += run.predecessor->precision_at_1;
      p3_sum += run.predecessor->precision_at_3;
      if (!run.predecessor->shannon_bits.empty()) {
        final_shannon_sum += run.predecessor->shannon_bits.back();
      }
    }
    if (run.first_spy) {
      ++first_spy_runs;
      fs_precision_sum += run.first_spy->precision;
      fs_chance_sum += run.first_spy->chance;
    }
  }
  out += "  \"aggregate\": {\n";
  out += "    \"runs\": " + std::to_string(runs.size()) + ",\n";
  out += "    \"intersection\": ";
  if (intersection_runs > 0) {
    const double n = static_cast<double>(intersection_runs);
    out += "{\n";
    out += "      \"mean_set_size\": " +
           num_array(aggregate_mean_curve(set_curves)) + ",\n";
    out += "      \"mean_expected\": " +
           num_array(aggregate_mean_curve(expected_curves)) + ",\n";
    out += "      \"mean_retention_hat\": " + num(retention_sum / n) + ",\n";
    out += "      \"max_rel_deviation\": " + num(worst_deviation) + ",\n";
    out += "      \"all_calibrated\": " +
           std::string(all_calibrated ? "true" : "false") + "\n";
    out += "    }";
  } else {
    out += "null";
  }
  out += ",\n";
  out += "    \"predecessor\": ";
  if (predecessor_runs > 0) {
    const double n = static_cast<double>(predecessor_runs);
    out += "{\n";
    out += "      \"mean_precision_at_1\": " + num(p1_sum / n) + ",\n";
    out += "      \"mean_precision_at_3\": " + num(p3_sum / n) + ",\n";
    out += "      \"mean_final_shannon_bits\": " +
           num(final_shannon_sum / n) + "\n";
    out += "    }";
  } else {
    out += "null";
  }
  out += ",\n";
  out += "    \"first_spy\": ";
  if (first_spy_runs > 0) {
    const double n = static_cast<double>(first_spy_runs);
    out += "{\n";
    out += "      \"mean_precision\": " + num(fs_precision_sum / n) + ",\n";
    out += "      \"mean_chance\": " + num(fs_chance_sum / n) + "\n";
    out += "    }";
  } else {
    out += "null";
  }
  out += "\n";
  out += "  }\n";
  out += "}\n";
  return out;
}

}  // namespace rac::attacks
