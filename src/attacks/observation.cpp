#include "attacks/observation.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "common/rng.hpp"

namespace rac::attacks {

ObservationLog::ObservationLog(const ObserverSpec& spec, std::uint64_t seed,
                               std::size_t initial_endpoints)
    : spec_(spec) {
  if (spec_.mode == ObserverMode::kFraction) {
    if (spec_.fraction <= 0.0 || spec_.fraction > 1.0) {
      throw std::invalid_argument(
          "ObservationLog: observer fraction must be in (0, 1]");
    }
    if (initial_endpoints == 0) {
      throw std::invalid_argument(
          "ObservationLog: fraction observer needs a non-empty population");
    }
    const auto want = static_cast<std::size_t>(std::llround(
        spec_.fraction * static_cast<double>(initial_endpoints)));
    const std::size_t count =
        std::min(initial_endpoints, std::max<std::size_t>(1, want));
    // Dedicated substream: the draw never touches the simulator RNG, so
    // arming an observer is trace-neutral (same contract as the
    // impairment plane).
    Rng rng = Rng::substream(seed, "attacks.observer");
    std::vector<std::size_t> picks =
        rng.sample_indices(initial_endpoints, count);
    std::sort(picks.begin(), picks.end());
    compromised_.reserve(picks.size());
    is_compromised_.assign(initial_endpoints, false);
    for (const std::size_t p : picks) {
      compromised_.push_back(static_cast<EndpointId>(p));
      is_compromised_[p] = true;
    }
  }
}

bool ObservationLog::observes(EndpointId e) const {
  if (spec_.mode == ObserverMode::kGlobal) return true;
  if (spec_.mode == ObserverMode::kNone) return false;
  return e < is_compromised_.size() && is_compromised_[e];
}

void ObservationLog::record(EndpointId from, EndpointId to,
                            std::size_t bytes, SimTime when) {
  ++tapped_;
  if (spec_.mode == ObserverMode::kNone) return;
  if (spec_.mode == ObserverMode::kFraction && !observes(from) &&
      !observes(to)) {
    return;
  }
  entries_.push_back(Observation{when, from, to,
                                 static_cast<std::uint64_t>(bytes),
                                 next_seq_++});
}

void ObservationLog::finalize() {
  if (finalized_) return;
  finalized_ = true;
  // merge-order: canonical key (sent, from, seq). The tap fires in a
  // K-independent order per kernel (classic: global schedule order;
  // sharded: barrier merge order), so `seq` is K-independent and this
  // sort yields one canonical analyzer-visible sequence per kernel.
  std::sort(entries_.begin(), entries_.end(),
            [](const Observation& a, const Observation& b) {
              if (a.sent != b.sent) return a.sent < b.sent;
              if (a.from != b.from) return a.from < b.from;
              return a.seq < b.seq;
            });
}

}  // namespace rac::attacks
