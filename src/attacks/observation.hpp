// Passive traffic-analysis adversary plane, part 1: the observation log.
//
// A passive network-level opponent (Sec. V threat model) sees link
// metadata only — (from, to, size, send time), never plaintext. This
// module reconstructs that view from the simulator's wire tap
// (sim::Network::set_tap) for either a *global* observer or an opponent
// controlling a fraction f of the nodes (it sees exactly the links that
// touch a compromised endpoint).
//
// Determinism contract (the property tests/test_attacks.cpp pins): the
// finalized log is byte-for-byte identical for the same seed regardless
// of --jobs or --shards. Ingredients:
//  - the compromised set is drawn from a named RNG substream of the run
//    seed ("attacks.observer"), never from the simulator RNG, so an
//    installed observer leaves the DES trace untouched;
//  - the sharded tap already fires in canonical (arrival, sent, from,
//    from_seq) order at window barriers (sim/network.cpp); finalize()
//    re-sorts by the kernel-independent key (sent, from, record seq), so
//    analyzers see one canonical sequence per kernel for every K >= 1.
#pragma once

#include <cstdint>
#include <vector>

#include "common/msg.hpp"
#include "common/time.hpp"

namespace rac::attacks {

enum class ObserverMode { kNone, kGlobal, kFraction };

/// Scenario-level description of the opponent and its analyzers. Parsed
/// from the `observer_*` / `attacks` scenario keys (faults/scenario.cpp).
struct ObserverSpec {
  ObserverMode mode = ObserverMode::kNone;
  /// kFraction: fraction of the *initial* population the opponent
  /// controls (later joiners are never compromised; documented in
  /// DESIGN.md §13).
  double fraction = 0.2;
  /// Half-width of the candidate window: a node is a candidate for an
  /// observation at time t if it transmitted within [t - window,
  /// t + window] (intersection) or [t, t + window] (predecessor /
  /// first-spy look-ahead).
  SimDuration window = 50 * kMillisecond;
  /// The opponent's clock granularity: analyzers floor every ground-truth
  /// wave time to this grid before searching the log (0 = exact). The
  /// simulator hands out infinitely precise origination times; a real
  /// opponent only knows "a message appeared around t", and with exact
  /// timestamps a global first-spy attributes perfectly even under cover
  /// traffic — pure artifact. Set this >= the slot period to model an
  /// honest timing adversary (see the test_attacks.cpp contrast).
  SimDuration clock = 0;
  /// Use every stride-th target wave as a linked observation, so the
  /// inter-observation gap is stride * send_period.
  unsigned stride = 1;
  /// Cap on linked observations per target.
  unsigned max_observations = 12;
  /// Number of attributed targets (the busiest senders by ground truth).
  unsigned targets = 2;
  /// Minimum wire bytes for a transmission to count as a protocol cell
  /// (0 = every tapped message counts). RAC pads cells to one size, so
  /// this only filters control chatter, not data-vs-noise.
  std::size_t data_floor = 0;
  /// Calibration band: maximum relative deviation of the empirical
  /// intersection curve from analysis::expected_intersection_size.
  double tolerance = 0.35;
  bool run_intersection = true;
  bool run_predecessor = true;
  bool run_first_spy = true;
};

/// One tapped link event as the opponent records it.
struct Observation {
  SimTime sent = 0;
  EndpointId from = 0;
  EndpointId to = 0;
  std::uint64_t bytes = 0;
  /// Global record index at tap time; the canonical-sort tiebreaker.
  std::uint64_t seq = 0;
};

/// The opponent's reconstructed per-link observation log. Feed record()
/// from the wire tap during the run, then finalize() once before reading
/// entries().
class ObservationLog {
 public:
  /// `initial_endpoints` is the population the compromised set is drawn
  /// from (endpoints [0, initial_endpoints)). The draw happens here, in
  /// the constructor, from substream "attacks.observer" of `seed`.
  ObservationLog(const ObserverSpec& spec, std::uint64_t seed,
                 std::size_t initial_endpoints);

  /// Tap hook: filters by visibility and appends. Hot path — O(1).
  void record(EndpointId from, EndpointId to, std::size_t bytes,
              SimTime when);

  /// Canonical sort by (sent, from, seq). Idempotent.
  void finalize();

  const std::vector<Observation>& entries() const { return entries_; }
  /// Does the opponent see links touching `e`? (True for everyone under
  /// a global observer.)
  bool observes(EndpointId e) const;
  /// Sorted compromised endpoints (empty under kGlobal / kNone).
  const std::vector<EndpointId>& compromised() const { return compromised_; }
  const ObserverSpec& spec() const { return spec_; }
  /// Tapped messages total vs. recorded (visible) — the coverage ratio
  /// reported per run.
  std::uint64_t tapped() const { return tapped_; }

 private:
  ObserverSpec spec_;
  std::vector<EndpointId> compromised_;  // sorted
  std::vector<bool> is_compromised_;     // O(1) membership, grows on use
  std::vector<Observation> entries_;
  std::uint64_t tapped_ = 0;
  std::uint64_t next_seq_ = 0;
  bool finalized_ = false;
};

}  // namespace rac::attacks
