// Passive traffic-analysis adversary plane, part 2: attack analyzers.
//
// Three classic deanonymization attacks over the observation log, each
// scored against simulation ground truth (the data-onion origination
// times Core records under Config::record_origin_times):
//
//  - Intersection (Raymond, Sec. V-A2): link several messages of one
//    sender, intersect the candidate sets observed around each; report
//    the candidate-set-size decay curve and check it against the
//    closed-form E[|S_k|] = 1 + (G-1) r^(k-1) from
//    analysis::expected_intersection_size (the calibration lane).
//  - Predecessor: compromised receivers tally who transmitted right
//    after each target wave; report the sender posterior's Shannon and
//    min-entropy per round plus attribution precision@k.
//  - First-spy: attribute each wave to the first transmitter observed at
//    or after its origination (as the opponent's clock resolves it —
//    ObserverSpec::clock); with a realistic clock, constant-rate cover
//    traffic collapses this to chance while the noise-free variant stays
//    exact — the measured twin of the test_observer.cpp contrast.
//
// Everything here is pure post-processing: no RNG, no scheduling, no
// floating-point accumulation order that depends on container hashing —
// the same finalized log and ground truth always produce the same report.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "attacks/observation.hpp"

namespace rac::attacks {

/// One data-onion origination: the deanonymization ground truth.
struct Wave {
  SimTime at = 0;
  EndpointId origin = 0;
};

struct GroundTruth {
  /// Sorted by (at, origin).
  std::vector<Wave> waves;
};

struct IntersectionResult {
  /// Attributed targets, busiest first (ties: lower endpoint).
  std::vector<EndpointId> targets;
  /// Mean candidate-set size after k linked observations (index k-1),
  /// averaged over targets.
  std::vector<double> set_size;
  /// Closed-form curve with the fitted retention (same indexing).
  std::vector<double> expected;
  /// Per-interval retention fitted from the empirical curve.
  double retention_hat = 1.0;
  /// max_k |set_size[k] - expected[k]| / expected[k].
  double max_rel_deviation = 0.0;
  /// max_rel_deviation <= spec.tolerance.
  bool calibrated = true;
  /// log2(set_size[k]): anonymity-set entropy under a uniform posterior.
  std::vector<double> entropy_bits;
};

struct PredecessorResult {
  std::vector<EndpointId> targets;
  unsigned rounds = 0;
  /// Posterior entropy over predecessor candidates after each round,
  /// averaged over targets (index = round - 1).
  std::vector<double> shannon_bits;
  std::vector<double> min_entropy_bits;
  /// Mean number of distinct predecessor candidates after each round.
  std::vector<double> support;
  /// Fraction of targets whose top-tallied predecessor is the target
  /// itself (the true first transmitter of its own onions).
  double precision_at_1 = 0.0;
  /// ... whose true sender ranks in the top 3.
  double precision_at_3 = 0.0;
};

struct FirstSpyResult {
  std::uint64_t waves_total = 0;
  /// Waves with at least one visible transmission in the look-ahead
  /// window (the attributable ones).
  std::uint64_t waves_attributed = 0;
  std::uint64_t waves_correct = 0;
  /// waves_correct / waves_attributed (1.0 when nothing attributable).
  double precision = 0.0;
  /// Chance baseline: 1 / (distinct visible transmitters).
  double chance = 0.0;
  /// Cumulative precision after each attributable wave, in time order.
  std::vector<double> cumulative_precision;
};

/// One run's full attack report.
struct AttackReport {
  std::uint64_t seed = 0;
  std::size_t nodes = 0;
  std::size_t compromised = 0;
  std::uint64_t observations = 0;  // visible entries in the log
  std::uint64_t tapped = 0;        // total tapped link events
  std::optional<IntersectionResult> intersection;
  std::optional<PredecessorResult> predecessor;
  std::optional<FirstSpyResult> first_spy;
};

/// Targets for the linked-sender attacks: the `spec.targets` busiest
/// origins in the ground truth (ties: lower endpoint id). Exposed for
/// tests.
std::vector<EndpointId> pick_targets(const GroundTruth& truth,
                                     unsigned targets);

IntersectionResult run_intersection(const ObservationLog& log,
                                    const GroundTruth& truth);
PredecessorResult run_predecessor(const ObservationLog& log,
                                  const GroundTruth& truth);
FirstSpyResult run_first_spy(const ObservationLog& log,
                             const GroundTruth& truth);

/// Run every analyzer the spec enables. `log` must be finalized.
AttackReport run_attacks(const ObservationLog& log, const GroundTruth& truth,
                         std::uint64_t seed, std::size_t nodes);

}  // namespace rac::attacks
