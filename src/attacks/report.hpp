// Passive traffic-analysis adversary plane, part 3: the versioned
// "rac.attacks.report/1" JSON block. One document per campaign: a
// scenario/observer echo, one entry per run (seed order), and an
// aggregate with mean anonymity curves. Byte-stable: runs arrive in seed
// order whatever --jobs was, every float prints through one fixed-format
// helper, and no map iteration order leaks in (see DESIGN.md §13 and
// EXPERIMENTS.md for the schema reference; tools/validate_metrics.py
// --attacks checks it).
#pragma once

#include <string>
#include <vector>

#include "attacks/attacks.hpp"

namespace rac::attacks {

/// Campaign-level context echoed into the report header.
struct ReportMeta {
  std::string scenario = "scenario";
  std::uint32_t nodes = 0;
  std::uint32_t seeds = 1;
  std::uint64_t base_seed = 0;
  std::int64_t duration_ms = 0;
  std::string traffic;
  /// Which kernel produced the trace: "classic" (shards = 0) or
  /// "windowed" (shards >= 1). Deliberately NOT the shard count — the
  /// windowed kernel's report is byte-identical for every K >= 1, and
  /// echoing K would be the one field breaking that contract.
  std::string kernel = "classic";
  ObserverSpec spec;
};

/// Serialize per-run reports (seed order) to rac.attacks.report/1.
std::string report_json(const ReportMeta& meta,
                        const std::vector<AttackReport>& runs);

}  // namespace rac::attacks
