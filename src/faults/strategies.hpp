// Adversary strategies: scripted misbehaviour layered over Node::Behavior.
//
// A strategy owns a member set (node indices) and a behaviour recipe;
// activating it applies the recipe to every member, deactivating restores
// correct-node behaviour. The Injector schedules (de)activations at sim
// times, and the campaign layer reads the recorded activation windows as
// detection-latency ground truth.
//
// Catalogue (kinds accepted by make_strategy and the scenario grammar):
//   freerider  — drop-all: refuses relay duty AND drops every ring forward
//   dropper    — probabilistic forwarder: drops fraction `p` of forwards
//   selective  — drops only relay duties (still forwards ring traffic)
//   shortener  — path shortener: builds own onions over `relays` (< L)
//                relays, trading its own anonymity for latency; invisible
//                to the three checks by design
//   clique     — colluding clique: members freeride on relay duty but
//                never suspect or accuse each other
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "rac/simulation.hpp"

namespace rac::faults {

class AdversaryStrategy {
 public:
  AdversaryStrategy(std::string name, std::vector<std::size_t> members)
      : name_(std::move(name)), members_(std::move(members)) {}
  virtual ~AdversaryStrategy() = default;

  const std::string& name() const { return name_; }
  virtual std::string kind() const = 0;
  const std::vector<std::size_t>& members() const { return members_; }

  /// Apply the deviation to every member. Records the activation time.
  void activate(Simulation& sim);
  /// Restore correct behaviour on every member.
  void deactivate(Simulation& sim);

  bool active() const { return active_; }
  std::optional<SimTime> activated_at() const { return activated_at_; }
  std::optional<SimTime> deactivated_at() const { return deactivated_at_; }

 protected:
  /// The deviation applied to `member` (a node index) on activation.
  virtual Node::Behavior member_behavior(const Simulation& sim,
                                         std::size_t member) const = 0;

 private:
  std::string name_;
  std::vector<std::size_t> members_;
  bool active_ = false;
  std::optional<SimTime> activated_at_;
  std::optional<SimTime> deactivated_at_;
};

/// Drop-all freerider: refuses relay duty and drops every ring forward.
class StaticFreerider : public AdversaryStrategy {
 public:
  using AdversaryStrategy::AdversaryStrategy;
  std::string kind() const override { return "freerider"; }

 protected:
  Node::Behavior member_behavior(const Simulation&,
                                 std::size_t) const override;
};

/// Probabilistic dropper: forwards ring traffic with probability 1 - p.
class ProbabilisticDropper : public AdversaryStrategy {
 public:
  ProbabilisticDropper(std::string name, std::vector<std::size_t> members,
                       double drop_rate)
      : AdversaryStrategy(std::move(name), std::move(members)),
        drop_rate_(drop_rate) {}
  std::string kind() const override { return "dropper"; }
  double drop_rate() const { return drop_rate_; }

 protected:
  Node::Behavior member_behavior(const Simulation&,
                                 std::size_t) const override;

 private:
  double drop_rate_;
};

/// Selective dropper: serves ring forwards but silently drops the expensive
/// relay re-broadcasts (the deviation check #1 exists for).
class SelectiveDropper : public AdversaryStrategy {
 public:
  using AdversaryStrategy::AdversaryStrategy;
  std::string kind() const override { return "selective"; }

 protected:
  Node::Behavior member_behavior(const Simulation&,
                                 std::size_t) const override;
};

/// Path shortener: builds its own onions over `relays` relays instead of L.
class PathShortener : public AdversaryStrategy {
 public:
  PathShortener(std::string name, std::vector<std::size_t> members,
                unsigned relays)
      : AdversaryStrategy(std::move(name), std::move(members)),
        relays_(relays) {}
  std::string kind() const override { return "shortener"; }
  unsigned relays() const { return relays_; }

 protected:
  Node::Behavior member_behavior(const Simulation&,
                                 std::size_t) const override;

 private:
  unsigned relays_;
};

/// Colluding clique: members drop relay duty but never suspect or accuse
/// one another (one shared allies set). Forward-dropping rate is optional
/// — a fully silent clique is caught by check #2 immediately, a duty-only
/// clique exercises the anonymous relay-blacklist path.
class ColludingClique : public AdversaryStrategy {
 public:
  ColludingClique(std::string name, std::vector<std::size_t> members,
                  const Simulation& sim, double forward_drop_rate = 0.0);
  std::string kind() const override { return "clique"; }

 protected:
  Node::Behavior member_behavior(const Simulation&,
                                 std::size_t) const override;

 private:
  std::shared_ptr<const std::set<sim::EndpointId>> allies_;
  double forward_drop_rate_;
};

/// Factory for the scenario grammar: builds a strategy of `kind` with the
/// given members and numeric parameters (p, relays, ...). Throws
/// std::invalid_argument on unknown kinds.
std::unique_ptr<AdversaryStrategy> make_strategy(
    const std::string& kind, std::string name,
    std::vector<std::size_t> members, const Simulation& sim,
    const std::map<std::string, double>& params);

}  // namespace rac::faults
