#include "faults/injector.hpp"

#include <stdexcept>

namespace rac::faults {

Injector::Injector(Simulation& sim, std::uint64_t seed)
    : sim_(sim), fault_seed_(substream_seed(seed, "faults")) {}

Rng& Injector::stream(std::string_view name) {
  const auto it = streams_.find(name);
  if (it != streams_.end()) return it->second;
  return streams_
      .emplace(std::string(name), Rng(substream_seed(fault_seed_, name)))
      .first->second;
}

ImpairmentPlane& Injector::plane() {
  if (!plane_) {
    plane_ = std::make_unique<ImpairmentPlane>();
    sim_.network().set_impairment(plane_.get());
  }
  return *plane_;
}

void Injector::at(SimTime t, std::function<void()> fn) {
  actions_.push_back(std::move(fn));
  std::function<void()>* slot = &actions_.back();
  sim_.simulator().schedule_at(t, [slot] { (*slot)(); });
}

void Injector::every(SimDuration period, std::function<void()> fn) {
  if (period <= 0) throw std::invalid_argument("Injector::every: period");
  recurring_.emplace_back(period, std::move(fn));
  Recurring* r = &recurring_.back();
  sim_.simulator().schedule(period, [this, r] { fire_recurring(r); });
}

void Injector::fire_recurring(Recurring* r) {
  sim_.simulator().schedule(r->period, [this, r] { fire_recurring(r); });
  r->fn();
}

AdversaryStrategy& Injector::add_strategy(
    std::unique_ptr<AdversaryStrategy> s) {
  if (find_strategy(s->name()) != nullptr) {
    throw std::invalid_argument("duplicate strategy name: " + s->name());
  }
  strategies_.push_back(std::move(s));
  AdversaryStrategy& added = *strategies_.back();
  if (churn_) {
    for (const std::size_t m : added.members()) churn_->protect(m);
  }
  return added;
}

AdversaryStrategy* Injector::find_strategy(const std::string& name) {
  for (const auto& s : strategies_) {
    if (s->name() == name) return s.get();
  }
  return nullptr;
}

void Injector::activate_at(const std::string& name, SimTime t) {
  AdversaryStrategy* s = find_strategy(name);
  if (s == nullptr) throw std::invalid_argument("unknown strategy: " + name);
  at(t, [this, s] { s->activate(sim_); });
}

void Injector::deactivate_at(const std::string& name, SimTime t) {
  AdversaryStrategy* s = find_strategy(name);
  if (s == nullptr) throw std::invalid_argument("unknown strategy: " + name);
  at(t, [this, s] { s->deactivate(sim_); });
}

ChurnProcess& Injector::ensure_churn(const ChurnConfig& config) {
  if (!churn_) {
    churn_ = std::make_unique<ChurnProcess>(sim_, config, stream("churn"));
    for (const auto& s : strategies_) {
      for (const std::size_t m : s->members()) churn_->protect(m);
    }
  }
  return *churn_;
}

ChurnProcess& Injector::start_churn(const ChurnConfig& config) {
  ChurnProcess& c = ensure_churn(config);
  c.set_config(config);  // a flash-crowd may have created it rates-free
  c.start();
  return c;
}

void Injector::flash_crowd_at(SimTime t, std::size_t count) {
  ChurnProcess& c = ensure_churn(ChurnConfig{});
  at(t, [&c, count] { c.flash_crowd(count); });
}

}  // namespace rac::faults
