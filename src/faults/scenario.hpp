// Scenario files: a small key-value format describing one fault campaign.
//
// Grammar (line oriented; `#` starts a comment, blank lines ignored):
//
//   key = value            — configuration (see ScenarioSpec fields)
//   on <ms> <verb> [args]  — timed fault event at <ms> sim milliseconds
//
// Event verbs and their arguments (k=v pairs unless noted):
//
//   strategy <name> kind=<freerider|dropper|selective|shortener|clique>
//            members=<list> [p=<drop rate>] [relays=<n>]
//   strategy_off <name>
//   loss rate=<p> [from=<node> to=<node>]     — network-wide or one link
//   loss_off
//   jitter max_ms=<ms>
//   jitter_off
//   throttle factor=<0..1> [members=<list>]
//   throttle_off
//   partition <list>|<list>[|<list>...]       — cells of node indices
//   partition_off
//   churn [join=<rate>] [leave=<rate>] [crash=<rate>] [until_ms=<ms>]
//         [min_pop=<n>]                       — rates in events/sim-second
//   flashcrowd count=<n>
//
// <list> is comma-separated node indices and inclusive ranges: `0,3,7-9`.
//
// See EXPERIMENTS.md "Scenario files" for the full reference and examples.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "attacks/observation.hpp"
#include "rac/simulation.hpp"

namespace rac::faults {

/// Parsed `key = value` configuration of a scenario file.
struct ScenarioSpec {
  std::string name = "scenario";
  std::uint32_t nodes = 100;
  std::uint32_t group_target = 0;  // 0 = RAC-NoGroup
  /// Campaign: `seeds` runs with seeds base_seed, base_seed+1, ...
  std::uint32_t seeds = 1;
  std::uint64_t base_seed = 42;
  SimDuration duration = 400 * kMillisecond;

  unsigned relays = 5;
  unsigned rings = 7;
  std::size_t payload_bytes = 2'000;
  SimDuration send_period = 0;  // 0 = saturation pacing
  std::size_t saturation_window = 16;
  SimDuration check_timeout = 400 * kMillisecond;
  SimDuration check_sweep_period = 0;  // 0 = checks off
  unsigned follower_t = 3;
  double opponent_fraction = 0.1;
  std::uint32_t smin = 500;
  std::uint32_t smax = 2'000;

  double link_bps = 1e9;
  SimDuration propagation = 50 * kMicrosecond;

  /// "uniform" (start_uniform_traffic: every node streams payloads),
  /// "uniform_no_noise" (same, but noise padding suppressed on every
  /// node — the deanonymization worst case of Sec. V-A1), "noise"
  /// (start_all: nodes run the constant-rate protocol but originate no
  /// application payloads) or "none" (nodes idle).
  std::string traffic = "uniform";
  /// Restrict the uniform workloads to these node indices (empty = every
  /// node originates). Key: `traffic_senders = 0,3,7-9`.
  std::vector<std::size_t> traffic_senders;

  /// Passive traffic-analysis opponent (src/attacks/): `observer =
  /// none|global|fraction` plus the `observer_*` tuning keys and the
  /// `attacks = intersection,predecessor,first_spy` analyzer list. Only
  /// consumed when the campaign runs with CampaignOptions::attacks (the
  /// scenario_runner --attacks flag); otherwise fully inert.
  attacks::ObserverSpec observer;
  /// Period of automatic anonymous blacklist shuffle rounds over every
  /// group (0 = no rounds — relay accusations then never reach a quorum).
  SimDuration blacklist_round_period = 0;

  /// Build the SimulationConfig for one run of this scenario.
  SimulationConfig to_simulation_config(std::uint64_t seed) const;
};

/// One timed `on` line, uninterpreted: the campaign layer materializes it
/// against a live Injector.
struct ScenarioEvent {
  SimTime at = 0;
  std::string verb;
  /// Positional arguments (everything that is not k=v).
  std::vector<std::string> args;
  /// k=v arguments, verbatim values.
  std::map<std::string, std::string> params;
};

struct Scenario {
  ScenarioSpec spec;
  std::vector<ScenarioEvent> events;  // sorted by `at`, stable
};

/// Parse scenario text. Throws std::runtime_error with a line number on
/// malformed input or unknown keys/verbs.
Scenario parse_scenario(std::string_view text);

/// Parse a node-index list: comma-separated indices and inclusive ranges
/// (`0,3,7-9`). Throws std::runtime_error on malformed input.
std::vector<std::size_t> parse_index_list(std::string_view text);

}  // namespace rac::faults
