// Composable network impairments for the fault-injection subsystem.
//
// Each impairment is one fault model (loss, jitter, throttle, partition)
// with its own RNG substream; the ImpairmentPlane chains them and plugs
// into sim::Network as its LinkImpairment hook. Determinism contract: an
// impairment draws randomness ONLY from substreams derived from the Rng it
// was constructed with (an injector substream), never from the simulator
// RNG — so a plane with no enabled impairments leaves a run bit-identical
// to one with no plane installed at all. Stochastic impairments key their
// substream by the *sending endpoint*, not by global message order: the
// draw an endpoint's k-th message sees is a pure function of (impairment
// seed, endpoint, k), so neither shard partitioning nor cross-endpoint
// interleaving can perturb any draw (and concurrent shard threads touch
// disjoint per-endpoint streams).
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <set>
#include <utility>
#include <vector>

#include "common/rng.hpp"
#include "sim/network.hpp"

namespace rac::faults {

using sim::EndpointId;
using sim::LinkVerdict;

/// One composable fault model. `enabled` lets the injector schedule
/// activation windows without mutating the chain structure mid-run.
class Impairment {
 public:
  virtual ~Impairment() = default;
  virtual void apply(EndpointId from, EndpointId to, std::size_t bytes,
                     LinkVerdict& verdict) = 0;
  /// Mirrors sim::LinkImpairment::min_extra_delay for one chain element.
  virtual SimDuration min_extra_delay() const { return 0; }
  /// Mirrors sim::LinkImpairment::reserve_endpoints; stochastic
  /// impairments pre-size their per-endpoint substream tables here.
  virtual void reserve_endpoints(std::size_t /*n*/) {}
  void set_enabled(bool enabled) { enabled_ = enabled; }
  bool enabled() const { return enabled_; }

 private:
  bool enabled_ = true;
};

/// Bernoulli per-message loss: a default drop probability plus optional
/// per-directed-link overrides.
class UniformLoss : public Impairment {
 public:
  UniformLoss(double rate, Rng rng) : rate_(rate), base_seed_(rng.next()) {}

  void set_rate(double rate) { rate_ = rate; }
  double rate() const { return rate_; }
  /// Override the drop probability of the directed link from -> to.
  void set_link_rate(EndpointId from, EndpointId to, double rate) {
    per_link_[{from, to}] = rate;
  }

  void apply(EndpointId from, EndpointId to, std::size_t bytes,
             LinkVerdict& verdict) override;
  void reserve_endpoints(std::size_t n) override;

 private:
  double rate_;
  std::uint64_t base_seed_;
  std::vector<std::optional<Rng>> streams_;
  std::map<std::pair<EndpointId, EndpointId>, double> per_link_;
};

/// Adds a uniform random extra one-way delay in [0, max_jitter] to every
/// message.
class LatencyJitter : public Impairment {
 public:
  LatencyJitter(SimDuration max_jitter, Rng rng)
      : max_jitter_(max_jitter), base_seed_(rng.next()) {}

  void set_max_jitter(SimDuration max_jitter) { max_jitter_ = max_jitter; }

  void apply(EndpointId from, EndpointId to, std::size_t bytes,
             LinkVerdict& verdict) override;
  void reserve_endpoints(std::size_t n) override;

 private:
  SimDuration max_jitter_;
  std::uint64_t base_seed_;
  std::vector<std::optional<Rng>> streams_;
};

/// Scales link serialization time: a message touching a throttled endpoint
/// transmits at `factor` times the configured link rate (factor in (0, 1]),
/// i.e. its tx time is multiplied by 1/factor. With no endpoint set, every
/// link is throttled.
class BandwidthThrottle : public Impairment {
 public:
  explicit BandwidthThrottle(double factor) : factor_(factor) {}

  void set_factor(double factor) { factor_ = factor; }
  /// Throttle only links whose sender or receiver is in `endpoints`.
  void set_endpoints(std::set<EndpointId> endpoints) {
    endpoints_ = std::move(endpoints);
  }
  void clear_endpoints() { endpoints_.reset(); }

  void apply(EndpointId from, EndpointId to, std::size_t bytes,
             LinkVerdict& verdict) override;

 private:
  double factor_;
  std::optional<std::set<EndpointId>> endpoints_;
};

/// Node-set partition: endpoints assigned to different cells cannot
/// exchange messages; endpoints in no cell reach everyone (they model the
/// unaffected core of the network).
class Partition : public Impairment {
 public:
  Partition() = default;

  /// Assign cells; cell i gets id i. Clears any previous assignment.
  void assign(const std::vector<std::vector<EndpointId>>& cells);
  void clear() { cell_of_.clear(); }
  bool severed(EndpointId a, EndpointId b) const;

  void apply(EndpointId from, EndpointId to, std::size_t bytes,
             LinkVerdict& verdict) override;

 private:
  std::map<EndpointId, unsigned> cell_of_;
};

/// Ordered, owning chain of impairments; the object installed into the
/// network. Disabled impairments are skipped (and draw no randomness).
class ImpairmentPlane : public sim::LinkImpairment {
 public:
  UniformLoss& add_loss(double rate, Rng rng);
  LatencyJitter& add_jitter(SimDuration max_jitter, Rng rng);
  BandwidthThrottle& add_throttle(double factor);
  Partition& add_partition();

  std::size_t size() const { return chain_.size(); }

  void apply(EndpointId from, EndpointId to, std::size_t bytes,
             LinkVerdict& verdict) override;
  /// Conservative lower bound across the whole chain, counting disabled
  /// impairments too: the injector may enable one mid-run, and the sharded
  /// kernel's lookahead must already account for it.
  SimDuration min_extra_delay() const override;
  void reserve_endpoints(std::size_t n) override;

 private:
  std::vector<std::unique_ptr<Impairment>> chain_;
  std::size_t reserved_endpoints_ = 0;
};

}  // namespace rac::faults
