#include "faults/impairments.hpp"

namespace rac::faults {

void UniformLoss::apply(EndpointId from, EndpointId to, std::size_t bytes,
                        LinkVerdict& verdict) {
  (void)bytes;
  double rate = rate_;
  if (!per_link_.empty()) {
    const auto it = per_link_.find({from, to});
    if (it != per_link_.end()) rate = it->second;
  }
  // Draw unconditionally (even when the message is already doomed or the
  // rate is 0 while links override it): one draw per message keeps this
  // impairment's stream consumption independent of the others' decisions.
  if (rng_.next_bool(rate)) verdict.drop = true;
}

void LatencyJitter::apply(EndpointId from, EndpointId to, std::size_t bytes,
                          LinkVerdict& verdict) {
  (void)from;
  (void)to;
  (void)bytes;
  if (max_jitter_ <= 0) return;
  verdict.extra_delay += static_cast<SimDuration>(
      rng_.next_below(static_cast<std::uint64_t>(max_jitter_) + 1));
}

void BandwidthThrottle::apply(EndpointId from, EndpointId to,
                              std::size_t bytes, LinkVerdict& verdict) {
  (void)bytes;
  if (factor_ <= 0.0 || factor_ >= 1.0) return;
  if (endpoints_ &&
      !endpoints_->contains(from) && !endpoints_->contains(to)) {
    return;
  }
  verdict.tx_scale *= 1.0 / factor_;
}

void Partition::assign(const std::vector<std::vector<EndpointId>>& cells) {
  cell_of_.clear();
  for (unsigned c = 0; c < cells.size(); ++c) {
    for (const EndpointId ep : cells[c]) cell_of_[ep] = c;
  }
}

bool Partition::severed(EndpointId a, EndpointId b) const {
  const auto ia = cell_of_.find(a);
  const auto ib = cell_of_.find(b);
  if (ia == cell_of_.end() || ib == cell_of_.end()) return false;
  return ia->second != ib->second;
}

void Partition::apply(EndpointId from, EndpointId to, std::size_t bytes,
                      LinkVerdict& verdict) {
  (void)bytes;
  if (severed(from, to)) verdict.drop = true;
}

UniformLoss& ImpairmentPlane::add_loss(double rate, Rng rng) {
  chain_.push_back(std::make_unique<UniformLoss>(rate, rng));
  return static_cast<UniformLoss&>(*chain_.back());
}

LatencyJitter& ImpairmentPlane::add_jitter(SimDuration max_jitter, Rng rng) {
  chain_.push_back(std::make_unique<LatencyJitter>(max_jitter, rng));
  return static_cast<LatencyJitter&>(*chain_.back());
}

BandwidthThrottle& ImpairmentPlane::add_throttle(double factor) {
  chain_.push_back(std::make_unique<BandwidthThrottle>(factor));
  return static_cast<BandwidthThrottle&>(*chain_.back());
}

Partition& ImpairmentPlane::add_partition() {
  chain_.push_back(std::make_unique<Partition>());
  return static_cast<Partition&>(*chain_.back());
}

void ImpairmentPlane::apply(EndpointId from, EndpointId to, std::size_t bytes,
                            LinkVerdict& verdict) {
  for (const auto& imp : chain_) {
    if (imp->enabled()) imp->apply(from, to, bytes, verdict);
  }
}

}  // namespace rac::faults
