#include "faults/impairments.hpp"

#include <algorithm>

namespace rac::faults {

namespace {

// Lazily materialize the sending endpoint's substream. Slots are pre-sized
// via reserve_endpoints() when installed through a Network, so under the
// sharded kernel concurrent apply() calls only ever touch the slot of an
// endpoint owned by the calling shard; the resize fallback exists for
// standalone (single-threaded) use of an impairment.
Rng& endpoint_stream(std::vector<std::optional<Rng>>& streams,
                     std::uint64_t base_seed, EndpointId from) {
  if (from >= streams.size()) streams.resize(from + 1);
  auto& slot = streams[from];
  if (!slot) slot.emplace(substream_seed(base_seed, std::uint64_t{from}));
  return *slot;
}

}  // namespace

void UniformLoss::apply(EndpointId from, EndpointId to, std::size_t bytes,
                        LinkVerdict& verdict) {
  (void)bytes;
  double rate = rate_;
  if (!per_link_.empty()) {
    const auto it = per_link_.find({from, to});
    if (it != per_link_.end()) rate = it->second;
  }
  // Draw unconditionally (even when the message is already doomed or the
  // rate is 0 while links override it): one draw per message keeps this
  // impairment's stream consumption independent of the others' decisions.
  // The draw comes from the sender's substream, so it is a pure function of
  // (seed, from, per-sender message index) — independent of how senders'
  // messages interleave globally.
  if (endpoint_stream(streams_, base_seed_, from).next_bool(rate)) {
    verdict.drop = true;
  }
}

void UniformLoss::reserve_endpoints(std::size_t n) {
  if (n > streams_.size()) streams_.resize(n);
}

void LatencyJitter::apply(EndpointId from, EndpointId to, std::size_t bytes,
                          LinkVerdict& verdict) {
  (void)to;
  (void)bytes;
  if (max_jitter_ <= 0) return;
  verdict.extra_delay += static_cast<SimDuration>(
      endpoint_stream(streams_, base_seed_, from)
          .next_below(static_cast<std::uint64_t>(max_jitter_) + 1));
}

void LatencyJitter::reserve_endpoints(std::size_t n) {
  if (n > streams_.size()) streams_.resize(n);
}

void BandwidthThrottle::apply(EndpointId from, EndpointId to,
                              std::size_t bytes, LinkVerdict& verdict) {
  (void)bytes;
  if (factor_ <= 0.0 || factor_ >= 1.0) return;
  if (endpoints_ &&
      !endpoints_->contains(from) && !endpoints_->contains(to)) {
    return;
  }
  verdict.tx_scale *= 1.0 / factor_;
}

void Partition::assign(const std::vector<std::vector<EndpointId>>& cells) {
  cell_of_.clear();
  for (unsigned c = 0; c < cells.size(); ++c) {
    for (const EndpointId ep : cells[c]) cell_of_[ep] = c;
  }
}

bool Partition::severed(EndpointId a, EndpointId b) const {
  const auto ia = cell_of_.find(a);
  const auto ib = cell_of_.find(b);
  if (ia == cell_of_.end() || ib == cell_of_.end()) return false;
  return ia->second != ib->second;
}

void Partition::apply(EndpointId from, EndpointId to, std::size_t bytes,
                      LinkVerdict& verdict) {
  (void)bytes;
  if (severed(from, to)) verdict.drop = true;
}

UniformLoss& ImpairmentPlane::add_loss(double rate, Rng rng) {
  chain_.push_back(std::make_unique<UniformLoss>(rate, rng));
  chain_.back()->reserve_endpoints(reserved_endpoints_);
  return static_cast<UniformLoss&>(*chain_.back());
}

LatencyJitter& ImpairmentPlane::add_jitter(SimDuration max_jitter, Rng rng) {
  chain_.push_back(std::make_unique<LatencyJitter>(max_jitter, rng));
  chain_.back()->reserve_endpoints(reserved_endpoints_);
  return static_cast<LatencyJitter&>(*chain_.back());
}

BandwidthThrottle& ImpairmentPlane::add_throttle(double factor) {
  chain_.push_back(std::make_unique<BandwidthThrottle>(factor));
  chain_.back()->reserve_endpoints(reserved_endpoints_);
  return static_cast<BandwidthThrottle&>(*chain_.back());
}

Partition& ImpairmentPlane::add_partition() {
  chain_.push_back(std::make_unique<Partition>());
  chain_.back()->reserve_endpoints(reserved_endpoints_);
  return static_cast<Partition&>(*chain_.back());
}

void ImpairmentPlane::apply(EndpointId from, EndpointId to, std::size_t bytes,
                            LinkVerdict& verdict) {
  for (const auto& imp : chain_) {
    if (imp->enabled()) imp->apply(from, to, bytes, verdict);
  }
}

SimDuration ImpairmentPlane::min_extra_delay() const {
  SimDuration bound = 0;
  for (const auto& imp : chain_) {
    bound += std::min<SimDuration>(0, imp->min_extra_delay());
  }
  return bound;
}

void ImpairmentPlane::reserve_endpoints(std::size_t n) {
  reserved_endpoints_ = std::max(reserved_endpoints_, n);
  for (const auto& imp : chain_) imp->reserve_endpoints(reserved_endpoints_);
}

}  // namespace rac::faults
