// Poisson churn: independent join / graceful-leave / crash processes plus
// flash-crowd bursts, all drawn from one injector substream.
//
// Each enabled process is a Poisson arrival stream (exponential
// inter-arrival times at the configured events-per-sim-second rate).
// Leaves and crashes pick a uniformly random *running, unprotected* node;
// adversary members are protected so churn does not silently deactivate
// a strategy mid-campaign, and the population never sinks below
// `min_population`. Departed endpoints are recorded so the campaign layer
// can classify their evictions separately from false positives (a crashed
// node that gets evicted as a freerider is correct protocol behaviour,
// not a detection error).
#pragma once

#include <cstddef>
#include <set>

#include "common/rng.hpp"
#include "rac/simulation.hpp"

namespace rac::faults {

struct ChurnConfig {
  /// Poisson rates in events per simulated second; 0 disables a process.
  double join_rate = 0.0;
  double leave_rate = 0.0;
  double crash_rate = 0.0;
  /// No new churn events are scheduled at or after this time (0 = forever).
  SimTime until = 0;
  /// Leave/crash events that would shrink the running population below
  /// this floor are skipped (the arrival is consumed, not deferred).
  std::size_t min_population = 4;
};

class ChurnProcess {
 public:
  ChurnProcess(Simulation& sim, ChurnConfig config, Rng rng)
      : sim_(sim), config_(config), rng_(rng) {}

  /// Schedule the first arrival of each enabled process. Idempotent.
  void start();
  bool started() const { return started_; }
  /// Replace the config. Only effective before start().
  void set_config(const ChurnConfig& config) {
    if (!started_) config_ = config;
  }
  /// Stop generating events (already-scheduled arrivals fire as no-ops).
  void stop() { stopped_ = true; }

  /// Exclude node `index` from leave/crash selection (adversary members).
  void protect(std::size_t index) { protected_.insert(index); }

  /// Immediate burst of `count` simultaneous joins through random running
  /// contacts (the "flash crowd" of Sec. VI). Counts toward joins().
  void flash_crowd(std::size_t count);

  std::uint64_t joins() const { return joins_; }
  std::uint64_t leaves() const { return leaves_; }
  std::uint64_t crashes() const { return crashes_; }
  /// Endpoints that left or crashed (never cleared; a departed endpoint
  /// getting evicted later is expected, not a false positive).
  const std::set<EndpointId>& departed() const { return departed_; }

 private:
  enum class Kind { kJoin, kLeave, kCrash };

  double rate_of(Kind kind) const;
  void schedule_next(Kind kind);
  void fire(Kind kind);
  /// Uniform running, unprotected node index; -1 if none / floor reached.
  std::ptrdiff_t pick_victim();
  /// Uniform running node index to act as a join contact; -1 if none.
  std::ptrdiff_t pick_contact();

  Simulation& sim_;
  ChurnConfig config_;
  Rng rng_;
  bool started_ = false;
  bool stopped_ = false;
  std::set<std::size_t> protected_;
  std::set<EndpointId> departed_;
  std::uint64_t joins_ = 0;
  std::uint64_t leaves_ = 0;
  std::uint64_t crashes_ = 0;
};

}  // namespace rac::faults
