// Campaign driver: run a scenario over N seeds and aggregate metrics.
//
// One run = one Simulation + one Injector, with every `on` event of the
// scenario materialized into injector state before traffic starts. The
// strict ordering (Simulation ctor -> Injector ctor -> materialize ->
// start traffic -> run) plus the injector's no-draw guarantee means a
// scenario with no events reproduces the plain-Simulation trace of the
// same seed bit for bit — the acceptance anchor against the fig3 smoke.
//
// Ground truth for detection metrics: adversaries are the endpoints of
// every strategy that was ever activated; a run's evictions (group scope)
// are classified as adversary (true positive), departed (churn casualty —
// correct protocol behaviour, tracked separately) or honest (false
// positive). See EXPERIMENTS.md "Campaign metrics JSON" for the schema.
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "attacks/attacks.hpp"
#include "faults/injector.hpp"
#include "faults/scenario.hpp"
#include "telemetry/telemetry.hpp"

namespace rac::faults {

/// Cross-cutting knobs shared by every run of a campaign. The defaults
/// (sequential, tracer off, sampler off) keep `run_scenario(s, seed)` and
/// `run_campaign(s)` call sites compiling unchanged and their DES traces
/// bit-identical to the pre-telemetry driver.
struct CampaignOptions {
  /// Worker threads for run_campaign, one engine per thread. Runs land in
  /// seed order and registry merges commute, so every artifact is
  /// byte-stable regardless of this value.
  unsigned jobs = 1;
  /// Record span-tracer events (Chrome trace_event export). Tracing never
  /// draws sim RNG nor schedules events, so this is trace-neutral.
  bool collect_trace = false;
  /// Arm the time-series sampler with this period (0 = off). The recurring
  /// sample event perturbs the kernel event *count* (never the protocol
  /// trace), so parity anchors must leave this at 0.
  SimDuration series_period = 0;
  /// Shard each run across this many windowed-kernel engines (0 = classic
  /// single-engine path; see DESIGN.md §11). Composes with `jobs`: jobs
  /// parallelizes across seeds, shards parallelizes within one run. The
  /// windowed kernel's trace is bit-identical for every shards >= 1 but is
  /// a different (equally valid) trace than shards = 0, so parity anchors
  /// pin the two kernels separately. Incompatible with collect_trace: the
  /// span tracer is not thread-safe when enabled.
  unsigned shards = 0;
  /// Arm the passive traffic-analysis adversary plane (src/attacks/):
  /// install a wire tap feeding the scenario's ObserverSpec, record
  /// origin-time ground truth, and run the configured analyzers after the
  /// run into RunMetrics::attack. Trace-neutral (the tap and the ground
  /// truth neither draw sim RNG nor schedule events) and shard-compatible
  /// (the tap merges per-shard buffers at window barriers). No-op when
  /// the scenario sets `observer = none`.
  bool attacks = false;
};

struct EvictionOutcome {
  EndpointId endpoint = 0;
  SimTime when = 0;
  bool group_scope = true;
  /// "adversary", "departed" or "honest".
  std::string cls;
};

struct StrategyMetrics {
  std::string name;
  std::string kind;
  std::size_t members = 0;
  std::optional<SimTime> activated_at;
  /// Members of this strategy evicted from their group.
  std::size_t detected = 0;
  /// Eviction time minus activation time, seconds, per detected member.
  std::vector<double> detection_latency_s;
};

struct RunMetrics {
  std::uint64_t seed = 0;
  std::uint64_t delivered_payloads = 0;
  std::uint64_t delivered_bytes = 0;
  double goodput_bps = 0.0;  // avg per-node goodput, second half of the run
  std::uint64_t events = 0;
  std::uint64_t messages_lost = 0;
  std::uint64_t joins = 0;
  std::uint64_t leaves = 0;
  std::uint64_t crashes = 0;
  std::vector<EvictionOutcome> evictions;
  std::uint64_t true_evictions = 0;      // adversary members evicted
  std::uint64_t false_evictions = 0;     // honest members evicted
  std::uint64_t departed_evictions = 0;  // churn casualties evicted
  double precision = 1.0;
  double recall = 1.0;
  std::vector<StrategyMetrics> strategies;
  /// The run's telemetry sinks (always populated): registry counters and
  /// histograms feed the per-run "telemetry" JSON block; the tracer and
  /// sampler hold data only when the matching CampaignOptions asked for it.
  std::shared_ptr<telemetry::Collector> telemetry;
  /// Attack-plane report (CampaignOptions::attacks with a non-none
  /// observer only; null otherwise). Feeds attacks_json.
  std::shared_ptr<attacks::AttackReport> attack;
};

struct CampaignResult {
  Scenario scenario;
  std::vector<RunMetrics> runs;
};

/// Install every scenario event into the injector. Exposed for tests;
/// run_scenario calls it between construction and traffic start.
void materialize_events(const Scenario& scenario, Injector& injector);

/// One full run of `scenario` with the given seed. Installs a fresh
/// Collector on the calling thread for the duration of the run.
RunMetrics run_scenario(const Scenario& scenario, std::uint64_t seed,
                        const CampaignOptions& opts = {});

/// All `spec.seeds` runs (seeds base_seed, base_seed + 1, ...), across
/// `opts.jobs` worker threads. The first worker exception is rethrown
/// after all threads join.
CampaignResult run_campaign(const Scenario& scenario,
                            const CampaignOptions& opts = {});

/// Serialize a campaign to the documented JSON schema
/// ("rac.faults.campaign/1"); `pretty` controls indentation only.
std::string metrics_json(const CampaignResult& result);

/// Serialize the campaign's attack reports to "rac.attacks.report/1"
/// (see src/attacks/report.hpp). Runs without a report (attacks off for
/// that run) are skipped; `opts` supplies the shard count echoed into
/// the header.
std::string attacks_json(const CampaignResult& result,
                         const CampaignOptions& opts);

}  // namespace rac::faults
