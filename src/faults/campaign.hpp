// Campaign driver: run a scenario over N seeds and aggregate metrics.
//
// One run = one Simulation + one Injector, with every `on` event of the
// scenario materialized into injector state before traffic starts. The
// strict ordering (Simulation ctor -> Injector ctor -> materialize ->
// start traffic -> run) plus the injector's no-draw guarantee means a
// scenario with no events reproduces the plain-Simulation trace of the
// same seed bit for bit — the acceptance anchor against the fig3 smoke.
//
// Ground truth for detection metrics: adversaries are the endpoints of
// every strategy that was ever activated; a run's evictions (group scope)
// are classified as adversary (true positive), departed (churn casualty —
// correct protocol behaviour, tracked separately) or honest (false
// positive). See EXPERIMENTS.md "Campaign metrics JSON" for the schema.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "faults/injector.hpp"
#include "faults/scenario.hpp"

namespace rac::faults {

struct EvictionOutcome {
  EndpointId endpoint = 0;
  SimTime when = 0;
  bool group_scope = true;
  /// "adversary", "departed" or "honest".
  std::string cls;
};

struct StrategyMetrics {
  std::string name;
  std::string kind;
  std::size_t members = 0;
  std::optional<SimTime> activated_at;
  /// Members of this strategy evicted from their group.
  std::size_t detected = 0;
  /// Eviction time minus activation time, seconds, per detected member.
  std::vector<double> detection_latency_s;
};

struct RunMetrics {
  std::uint64_t seed = 0;
  std::uint64_t delivered_payloads = 0;
  std::uint64_t delivered_bytes = 0;
  double goodput_bps = 0.0;  // avg per-node goodput, second half of the run
  std::uint64_t events = 0;
  std::uint64_t messages_lost = 0;
  std::uint64_t joins = 0;
  std::uint64_t leaves = 0;
  std::uint64_t crashes = 0;
  std::vector<EvictionOutcome> evictions;
  std::uint64_t true_evictions = 0;      // adversary members evicted
  std::uint64_t false_evictions = 0;     // honest members evicted
  std::uint64_t departed_evictions = 0;  // churn casualties evicted
  double precision = 1.0;
  double recall = 1.0;
  std::vector<StrategyMetrics> strategies;
};

struct CampaignResult {
  Scenario scenario;
  std::vector<RunMetrics> runs;
};

/// Install every scenario event into the injector. Exposed for tests;
/// run_scenario calls it between construction and traffic start.
void materialize_events(const Scenario& scenario, Injector& injector);

/// One full run of `scenario` with the given seed.
RunMetrics run_scenario(const Scenario& scenario, std::uint64_t seed);

/// All `spec.seeds` runs (seeds base_seed, base_seed + 1, ...).
CampaignResult run_campaign(const Scenario& scenario);

/// Serialize a campaign to the documented JSON schema
/// ("rac.faults.campaign/1"); `pretty` controls indentation only.
std::string metrics_json(const CampaignResult& result);

}  // namespace rac::faults
