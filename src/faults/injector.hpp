// The fault injector: owns every fault source of one simulation run.
//
// One Injector is attached to a Simulation and becomes the single owner of
//  - named RNG substreams (derived from the scenario seed, never from the
//    simulator master stream — attaching an idle injector is trace-neutral);
//  - the network ImpairmentPlane (installed lazily on first use);
//  - the adversary-strategy registry and their scheduled activation windows;
//  - the churn process and flash-crowd bursts;
//  - arbitrary timed actions (`at`) and recurring actions (`every`), which
//    scenarios use for things like periodic blacklist shuffle rounds.
//
// Determinism contract: constructing an Injector draws nothing from the
// simulator RNG and schedules nothing; a run with an injector that never
// installs a fault is bit-identical to a run without one.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/rng.hpp"
#include "faults/churn.hpp"
#include "faults/impairments.hpp"
#include "faults/strategies.hpp"
#include "rac/simulation.hpp"

namespace rac::faults {

class Injector {
 public:
  /// `seed` is the scenario seed (normally SimulationConfig::seed); all
  /// fault randomness derives from substream_seed(seed, "faults").
  Injector(Simulation& sim, std::uint64_t seed);

  Simulation& simulation() { return sim_; }

  /// Stateful named substream (created on first use, persists across
  /// calls). Distinct names never share a draw sequence.
  Rng& stream(std::string_view name);

  /// The network impairment plane; installed into sim.network() on first
  /// access. An empty plane is a guaranteed no-op.
  ImpairmentPlane& plane();
  bool has_plane() const { return plane_ != nullptr; }

  // --- Timed actions. ---
  /// Run `fn` at absolute sim time `t` (>= now).
  void at(SimTime t, std::function<void()> fn);
  /// Run `fn` every `period`, first firing one period from now.
  void every(SimDuration period, std::function<void()> fn);

  // --- Adversary strategies. ---
  AdversaryStrategy& add_strategy(std::unique_ptr<AdversaryStrategy> s);
  AdversaryStrategy* find_strategy(const std::string& name);
  const std::vector<std::unique_ptr<AdversaryStrategy>>& strategies() const {
    return strategies_;
  }
  /// Schedule (de)activation of a registered strategy by name.
  void activate_at(const std::string& name, SimTime t);
  void deactivate_at(const std::string& name, SimTime t);

  // --- Churn. ---
  /// Create (once) and start the churn process on its own substream.
  /// Members of every registered strategy are protected from departure.
  ChurnProcess& start_churn(const ChurnConfig& config);
  ChurnProcess* churn() { return churn_ ? churn_.get() : nullptr; }
  /// Schedule a flash-crowd burst of `count` joins at time `t`. Creates a
  /// churn process (with all rates zero) if none is running.
  void flash_crowd_at(SimTime t, std::size_t count);

 private:
  struct Recurring {
    SimDuration period;
    std::function<void()> fn;
  };
  void fire_recurring(Recurring* r);
  ChurnProcess& ensure_churn(const ChurnConfig& config);

  Simulation& sim_;
  std::uint64_t fault_seed_;
  std::map<std::string, Rng, std::less<>> streams_;
  std::unique_ptr<ImpairmentPlane> plane_;
  std::vector<std::unique_ptr<AdversaryStrategy>> strategies_;
  std::unique_ptr<ChurnProcess> churn_;
  // Deques: stable addresses for the {this, pointer} closures below.
  std::deque<std::function<void()>> actions_;
  std::deque<Recurring> recurring_;
};

}  // namespace rac::faults
