#include "faults/strategies.hpp"

#include <stdexcept>

namespace rac::faults {

void AdversaryStrategy::activate(Simulation& sim) {
  if (active_) return;
  for (const std::size_t m : members_) {
    sim.node(m).set_behavior(member_behavior(sim, m));
  }
  active_ = true;
  activated_at_ = sim.simulator().now();
  deactivated_at_.reset();
}

void AdversaryStrategy::deactivate(Simulation& sim) {
  if (!active_) return;
  for (const std::size_t m : members_) {
    sim.node(m).set_behavior(Node::Behavior{});
  }
  active_ = false;
  deactivated_at_ = sim.simulator().now();
}

Node::Behavior StaticFreerider::member_behavior(const Simulation&,
                                                std::size_t) const {
  Node::Behavior b;
  b.drop_relay_duty = true;
  b.forward_drop_rate = 1.0;
  return b;
}

Node::Behavior ProbabilisticDropper::member_behavior(const Simulation&,
                                                     std::size_t) const {
  Node::Behavior b;
  b.forward_drop_rate = drop_rate_;
  return b;
}

Node::Behavior SelectiveDropper::member_behavior(const Simulation&,
                                                 std::size_t) const {
  Node::Behavior b;
  b.drop_relay_duty = true;
  return b;
}

Node::Behavior PathShortener::member_behavior(const Simulation&,
                                              std::size_t) const {
  Node::Behavior b;
  b.relay_override = relays_ == 0 ? 1 : relays_;
  return b;
}

ColludingClique::ColludingClique(std::string name,
                                 std::vector<std::size_t> members,
                                 const Simulation& sim,
                                 double forward_drop_rate)
    : AdversaryStrategy(std::move(name), std::move(members)),
      forward_drop_rate_(forward_drop_rate) {
  auto allies = std::make_shared<std::set<sim::EndpointId>>();
  for (const std::size_t m : this->members()) {
    allies->insert(sim.node(m).endpoint());
  }
  allies_ = std::move(allies);
}

Node::Behavior ColludingClique::member_behavior(const Simulation&,
                                                std::size_t) const {
  Node::Behavior b;
  b.drop_relay_duty = true;
  b.forward_drop_rate = forward_drop_rate_;
  b.allies = allies_;
  return b;
}

std::unique_ptr<AdversaryStrategy> make_strategy(
    const std::string& kind, std::string name,
    std::vector<std::size_t> members, const Simulation& sim,
    const std::map<std::string, double>& params) {
  const auto param = [&params](const std::string& key, double fallback) {
    const auto it = params.find(key);
    return it == params.end() ? fallback : it->second;
  };
  if (kind == "freerider") {
    return std::make_unique<StaticFreerider>(std::move(name),
                                             std::move(members));
  }
  if (kind == "dropper") {
    return std::make_unique<ProbabilisticDropper>(
        std::move(name), std::move(members), param("p", 0.5));
  }
  if (kind == "selective") {
    return std::make_unique<SelectiveDropper>(std::move(name),
                                              std::move(members));
  }
  if (kind == "shortener") {
    return std::make_unique<PathShortener>(
        std::move(name), std::move(members),
        static_cast<unsigned>(param("relays", 1.0)));
  }
  if (kind == "clique") {
    return std::make_unique<ColludingClique>(std::move(name),
                                             std::move(members), sim,
                                             param("p", 0.0));
  }
  throw std::invalid_argument("unknown adversary strategy kind: " + kind);
}

}  // namespace rac::faults
