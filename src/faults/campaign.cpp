#include "faults/campaign.hpp"

#include <algorithm>

#include "attacks/report.hpp"
#include <atomic>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <set>
#include <stdexcept>
#include <thread>

namespace rac::faults {

namespace {

double num_param(const ScenarioEvent& ev, const std::string& key,
                 std::optional<double> fallback = std::nullopt) {
  const auto it = ev.params.find(key);
  if (it == ev.params.end()) {
    if (fallback) return *fallback;
    throw std::runtime_error("scenario event '" + ev.verb +
                             "' missing parameter '" + key + "'");
  }
  char* end = nullptr;
  const double d = std::strtod(it->second.c_str(), &end);
  if (end != it->second.c_str() + it->second.size() || it->second.empty()) {
    throw std::runtime_error("scenario event '" + ev.verb + "': parameter '" +
                             key + "' is not a number");
  }
  return d;
}

const std::string& positional(const ScenarioEvent& ev, std::size_t i) {
  if (i >= ev.args.size()) {
    throw std::runtime_error("scenario event '" + ev.verb +
                             "' missing positional argument");
  }
  return ev.args[i];
}

std::vector<std::vector<EndpointId>> parse_cells(const std::string& text) {
  std::vector<std::vector<EndpointId>> cells;
  std::size_t start = 0;
  while (start <= text.size()) {
    const std::size_t bar = std::min(text.find('|', start), text.size());
    const auto indices = parse_index_list(
        std::string_view(text).substr(start, bar - start));
    std::vector<EndpointId> cell;
    cell.reserve(indices.size());
    for (const std::size_t i : indices) {
      cell.push_back(static_cast<EndpointId>(i));
    }
    cells.push_back(std::move(cell));
    if (bar == text.size()) break;
    start = bar + 1;
  }
  return cells;
}

}  // namespace

void materialize_events(const Scenario& scenario, Injector& injector) {
  Simulation& sim = injector.simulation();
  // Shared single-instance impairments, created (disabled) on first use so
  // their substreams are fixed before the run starts.
  UniformLoss* loss = nullptr;
  LatencyJitter* jitter = nullptr;
  BandwidthThrottle* throttle = nullptr;
  Partition* partition = nullptr;
  const auto ensure_loss = [&]() -> UniformLoss* {
    if (loss == nullptr) {
      loss = &injector.plane().add_loss(0.0, injector.stream("loss"));
      loss->set_enabled(false);
    }
    return loss;
  };
  const auto ensure_jitter = [&]() -> LatencyJitter* {
    if (jitter == nullptr) {
      jitter = &injector.plane().add_jitter(0, injector.stream("jitter"));
      jitter->set_enabled(false);
    }
    return jitter;
  };
  const auto ensure_throttle = [&]() -> BandwidthThrottle* {
    if (throttle == nullptr) {
      throttle = &injector.plane().add_throttle(1.0);
      throttle->set_enabled(false);
    }
    return throttle;
  };
  const auto ensure_partition = [&]() -> Partition* {
    if (partition == nullptr) {
      partition = &injector.plane().add_partition();
      partition->set_enabled(false);
    }
    return partition;
  };

  for (const ScenarioEvent& ev : scenario.events) {
    if (ev.verb == "strategy") {
      const std::string& name = positional(ev, 0);
      if (injector.find_strategy(name) == nullptr) {
        const auto kind_it = ev.params.find("kind");
        const auto members_it = ev.params.find("members");
        if (kind_it == ev.params.end() || members_it == ev.params.end()) {
          throw std::runtime_error("strategy '" + name +
                                   "' needs kind= and members=");
        }
        std::map<std::string, double> numeric;
        for (const auto& [k, v] : ev.params) {
          if (k == "kind" || k == "members") continue;
          numeric[k] = num_param(ev, k);
        }
        injector.add_strategy(make_strategy(
            kind_it->second, name, parse_index_list(members_it->second), sim,
            numeric));
      }
      injector.activate_at(name, ev.at);
    } else if (ev.verb == "strategy_off") {
      injector.deactivate_at(positional(ev, 0), ev.at);
    } else if (ev.verb == "loss") {
      UniformLoss* l = ensure_loss();
      const double rate = num_param(ev, "rate");
      if (ev.params.contains("from") || ev.params.contains("to")) {
        const auto from = static_cast<EndpointId>(num_param(ev, "from"));
        const auto to = static_cast<EndpointId>(num_param(ev, "to"));
        injector.at(ev.at, [l, from, to, rate] {
          l->set_link_rate(from, to, rate);
          l->set_enabled(true);
        });
      } else {
        injector.at(ev.at, [l, rate] {
          l->set_rate(rate);
          l->set_enabled(true);
        });
      }
    } else if (ev.verb == "loss_off") {
      UniformLoss* l = ensure_loss();
      injector.at(ev.at, [l] { l->set_enabled(false); });
    } else if (ev.verb == "jitter") {
      LatencyJitter* j = ensure_jitter();
      const auto max_jitter = static_cast<SimDuration>(
          num_param(ev, "max_ms") * static_cast<double>(kMillisecond));
      injector.at(ev.at, [j, max_jitter] {
        j->set_max_jitter(max_jitter);
        j->set_enabled(true);
      });
    } else if (ev.verb == "jitter_off") {
      LatencyJitter* j = ensure_jitter();
      injector.at(ev.at, [j] { j->set_enabled(false); });
    } else if (ev.verb == "throttle") {
      BandwidthThrottle* t = ensure_throttle();
      const double factor = num_param(ev, "factor");
      std::optional<std::set<EndpointId>> endpoints;
      if (const auto it = ev.params.find("members"); it != ev.params.end()) {
        std::set<EndpointId> eps;
        for (const std::size_t i : parse_index_list(it->second)) {
          eps.insert(static_cast<EndpointId>(i));
        }
        endpoints = std::move(eps);
      }
      injector.at(ev.at, [t, factor, endpoints] {
        t->set_factor(factor);
        if (endpoints) {
          t->set_endpoints(*endpoints);
        } else {
          t->clear_endpoints();
        }
        t->set_enabled(true);
      });
    } else if (ev.verb == "throttle_off") {
      BandwidthThrottle* t = ensure_throttle();
      injector.at(ev.at, [t] { t->set_enabled(false); });
    } else if (ev.verb == "partition") {
      Partition* p = ensure_partition();
      const auto cells = parse_cells(positional(ev, 0));
      injector.at(ev.at, [p, cells] {
        p->assign(cells);
        p->set_enabled(true);
      });
    } else if (ev.verb == "partition_off") {
      Partition* p = ensure_partition();
      injector.at(ev.at, [p] {
        p->clear();
        p->set_enabled(false);
      });
    } else if (ev.verb == "churn") {
      ChurnConfig cfg;
      cfg.join_rate = num_param(ev, "join", 0.0);
      cfg.leave_rate = num_param(ev, "leave", 0.0);
      cfg.crash_rate = num_param(ev, "crash", 0.0);
      if (ev.params.contains("until_ms")) {
        cfg.until = static_cast<SimTime>(num_param(ev, "until_ms") *
                                         static_cast<double>(kMillisecond));
      }
      cfg.min_population = static_cast<std::size_t>(
          num_param(ev, "min_pop", static_cast<double>(cfg.min_population)));
      injector.at(ev.at, [&injector, cfg] { injector.start_churn(cfg); });
    } else if (ev.verb == "flashcrowd") {
      injector.flash_crowd_at(
          ev.at, static_cast<std::size_t>(num_param(ev, "count")));
    } else {
      throw std::runtime_error("unhandled scenario verb '" + ev.verb + "'");
    }
  }
}

RunMetrics run_scenario(const Scenario& scenario, std::uint64_t seed,
                        const CampaignOptions& opts) {
  const ScenarioSpec& spec = scenario.spec;
  if (opts.collect_trace && opts.shards > 0) {
    throw std::invalid_argument(
        "run_scenario: --trace is incompatible with --shards (the span "
        "tracer is not thread-safe when enabled)");
  }
  auto collector = std::make_shared<telemetry::Collector>();
  collector->tracer().set_enabled(opts.collect_trace);
  const telemetry::Install install(collector.get());
  const bool attacks_on =
      opts.attacks && spec.observer.mode != attacks::ObserverMode::kNone;
  SimulationConfig cfg = spec.to_simulation_config(seed);
  cfg.shards = opts.shards;
  // Ground truth for the attack plane: per-node data-onion origination
  // times. Pure bookkeeping (no RNG, no scheduling), so arming it keeps
  // the DES trace bit-identical.
  if (attacks_on) cfg.node.record_origin_times = true;
  Simulation sim(cfg);
  std::unique_ptr<attacks::ObservationLog> observation;
  if (attacks_on) {
    // The compromised set draws from its own substream of `seed`
    // (never the simulator RNG), and the tap callback only appends to
    // the log — the observer is trace-neutral like the impairments.
    observation = std::make_unique<attacks::ObservationLog>(
        spec.observer, seed, spec.nodes);
    sim.network().set_tap([log = observation.get()](
                              EndpointId from, EndpointId to,
                              std::size_t bytes, SimTime when) {
      log->record(from, to, bytes, when);
    });
  }
  Injector injector(sim, seed);
  materialize_events(scenario, injector);
  if (spec.blacklist_round_period > 0) {
    injector.every(spec.blacklist_round_period, [&sim] {
      for (const std::uint32_t g : sim.active_groups()) {
        sim.run_blacklist_round(g);
      }
    });
  }
  if (opts.series_period > 0) {
    // Probe wiring. Probes are read-only and RNG-free; the recurring
    // sample event below is the sole perturbation --series introduces.
    telemetry::Sampler& sampler = collector->sampler();
    telemetry::Registry& reg = collector->registry();
    Simulation* simp = &sim;
    sampler.add_rate("goodput_bps", [&reg] {
      return 8.0 * static_cast<double>(
          reg.counter(telemetry::Stat::kRacBytesDelivered).value());
    });
    sampler.add_rate("delivered_per_s", [&reg] {
      return static_cast<double>(
          reg.counter(telemetry::Stat::kRacPayloadsDelivered).value());
    });
    sampler.add_rate("evictions_per_s", [&reg] {
      return static_cast<double>(
          reg.counter(telemetry::Stat::kRacEvictions).value());
    });
    sampler.add_gauge("relay_queue_depth", [simp] {
      return static_cast<double>(simp->total_relay_queue_depth());
    });
    sampler.add_gauge("uplink_backlog_ms", [simp] {
      return to_seconds(simp->network().total_uplink_backlog()) * 1e3;
    });
    sampler.add_gauge("kernel_pending_events", [simp] {
      return static_cast<double>(simp->pending_events());
    });
    sampler.add_gauge("active_groups", [simp] {
      return static_cast<double>(simp->active_groups().size());
    });
    injector.every(opts.series_period,
                   [c = collector.get(), simp] {
                     c->sampler().sample(simp->simulator().now());
                   });
  }
  if (spec.traffic == "uniform" || spec.traffic == "uniform_no_noise") {
    if (spec.traffic == "uniform_no_noise") {
      // Suppress the constant-rate noise padding everywhere: the
      // deanonymization worst case (Sec. V-A1) the first-spy contrast
      // measures against.
      for (std::size_t i = 0; i < sim.size(); ++i) {
        Node::Behavior b = sim.node(i).behavior();
        b.no_noise = true;
        sim.node(i).set_behavior(b);
      }
    }
    sim.start_uniform_traffic(spec.traffic_senders);
  } else if (spec.traffic == "noise") {
    sim.start_all();
  }
  sim.run_for(spec.duration);

  RunMetrics m;
  m.seed = seed;
  m.telemetry = collector;
  // Goodput accounting reads the shared registry (fed by the deliver
  // callback through direct, non-macro record calls, so OFF builds count
  // too); the legacy delivery meter remains the windowed-rate source.
  m.delivered_payloads =
      collector->registry()
          .counter(telemetry::Stat::kRacPayloadsDelivered)
          .value();
  m.delivered_bytes = collector->registry()
                          .counter(telemetry::Stat::kRacBytesDelivered)
                          .value();
  m.goodput_bps =
      sim.avg_node_goodput_bps(spec.duration / 2, sim.simulator().now());
  m.events = sim.events_processed();
  m.messages_lost = sim.network().messages_lost();
  if (const ChurnProcess* churn = injector.churn()) {
    m.joins = churn->joins();
    m.leaves = churn->leaves();
    m.crashes = churn->crashes();
  }

  // Ground truth: endpoints of every strategy that was ever active.
  std::set<EndpointId> adversaries;
  for (const auto& s : injector.strategies()) {
    if (!s->activated_at()) continue;
    for (const std::size_t member : s->members()) {
      adversaries.insert(sim.node(member).endpoint());
    }
  }
  const std::set<EndpointId>* departed = nullptr;
  if (const ChurnProcess* churn = injector.churn()) {
    departed = &churn->departed();
  }

  // Classify group-scope evictions by unique endpoint (a node evicted from
  // its group and later from channels counts once).
  std::set<EndpointId> group_evicted;
  std::map<EndpointId, SimTime> first_group_eviction;
  for (const auto& rec : sim.evictions()) {
    EvictionOutcome out;
    out.endpoint = rec.evicted;
    out.when = rec.when;
    out.group_scope = rec.scope.type == overlay::ScopeType::kGroup;
    if (adversaries.contains(rec.evicted)) {
      out.cls = "adversary";
    } else if (departed != nullptr && departed->contains(rec.evicted)) {
      out.cls = "departed";
    } else {
      out.cls = "honest";
    }
    if (out.group_scope && group_evicted.insert(rec.evicted).second) {
      first_group_eviction.emplace(rec.evicted, rec.when);
      if (out.cls == "adversary") {
        ++m.true_evictions;
      } else if (out.cls == "departed") {
        ++m.departed_evictions;
      } else {
        ++m.false_evictions;
      }
    }
    m.evictions.push_back(std::move(out));
  }
  const std::uint64_t positives = m.true_evictions + m.false_evictions;
  m.precision = positives == 0
                    ? 1.0
                    : static_cast<double>(m.true_evictions) /
                          static_cast<double>(positives);
  m.recall = adversaries.empty()
                 ? 1.0
                 : static_cast<double>(m.true_evictions) /
                       static_cast<double>(adversaries.size());

  for (const auto& s : injector.strategies()) {
    StrategyMetrics sm;
    sm.name = s->name();
    sm.kind = s->kind();
    sm.members = s->members().size();
    sm.activated_at = s->activated_at();
    if (s->activated_at()) {
      for (const std::size_t member : s->members()) {
        const auto it =
            first_group_eviction.find(sim.node(member).endpoint());
        if (it == first_group_eviction.end()) continue;
        ++sm.detected;
        const double latency_s = to_seconds(it->second - *s->activated_at());
        sm.detection_latency_s.push_back(latency_s);
        // Mirror into a named registry histogram (microseconds) so
        // campaign aggregation can merge detection latency across seeds;
        // the raw vector stays — tests and the JSON summary read it.
        collector->registry()
            .histogram("faults.detect_us." + sm.name)
            .record(static_cast<std::uint64_t>(latency_s * 1e6));
      }
    }
    m.strategies.push_back(std::move(sm));
  }

  if (attacks_on) {
    observation->finalize();
    attacks::GroundTruth truth;
    for (std::size_t i = 0; i < sim.size(); ++i) {
      const Node& node = sim.node(i);
      for (const SimTime at : node.origin_times()) {
        truth.waves.push_back(attacks::Wave{at, node.endpoint()});
      }
    }
    std::sort(truth.waves.begin(), truth.waves.end(),
              [](const attacks::Wave& a, const attacks::Wave& b) {
                if (a.at != b.at) return a.at < b.at;
                return a.origin < b.origin;
              });
    m.attack = std::make_shared<attacks::AttackReport>(
        attacks::run_attacks(*observation, truth, seed, sim.size()));
  }
  return m;
}

CampaignResult run_campaign(const Scenario& scenario,
                            const CampaignOptions& opts) {
  CampaignResult result;
  result.scenario = scenario;
  const std::uint32_t seeds = std::max<std::uint32_t>(1, scenario.spec.seeds);
  result.runs.resize(seeds);
  const unsigned jobs =
      std::min<unsigned>(std::max(1u, opts.jobs), seeds);
  if (jobs == 1) {
    for (std::uint32_t i = 0; i < seeds; ++i) {
      result.runs[i] =
          run_scenario(scenario, scenario.spec.base_seed + i, opts);
    }
    return result;
  }

  // One engine per worker thread; the thread-local collector gate keeps
  // the runs' sinks disjoint. Each run lands at its seed's slot, so the
  // result (and everything derived from it, including merged telemetry)
  // is identical to the sequential order whatever the interleaving.
  std::atomic<std::uint32_t> next{0};
  std::mutex err_mu;
  std::exception_ptr first_error;
  std::vector<std::thread> workers;
  workers.reserve(jobs);
  for (unsigned w = 0; w < jobs; ++w) {
    workers.emplace_back([&] {
      for (;;) {
        const std::uint32_t i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= seeds) return;
        try {
          result.runs[i] =
              run_scenario(scenario, scenario.spec.base_seed + i, opts);
        } catch (...) {
          const std::lock_guard<std::mutex> lock(err_mu);
          if (!first_error) first_error = std::current_exception();
          return;
        }
      }
    });
  }
  for (std::thread& t : workers) t.join();
  if (first_error) std::rethrow_exception(first_error);
  return result;
}

namespace {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string num(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6f", v);
  return buf;
}

struct LatencySummary {
  std::size_t count = 0;
  double mean = 0.0;
  double min = 0.0;
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
  double max = 0.0;
};

LatencySummary summarize(std::vector<double> xs) {
  LatencySummary s;
  s.count = xs.size();
  if (xs.empty()) return s;
  std::sort(xs.begin(), xs.end());
  // Same quantile convention as telemetry::Histogram::percentile — the
  // ceil(q * count)-th smallest value.
  const auto pct = [&xs](double q) {
    const auto rank = static_cast<std::size_t>(
        std::max(1.0, std::ceil(q * static_cast<double>(xs.size()))));
    return xs[std::min(rank, xs.size()) - 1];
  };
  s.min = xs.front();
  s.max = xs.back();
  s.p50 = pct(0.50);
  s.p95 = pct(0.95);
  s.p99 = pct(0.99);
  double sum = 0.0;
  // merge-order: xs was sorted ascending above, so this FP sum always
  // adds in the same value order regardless of how runs were collected.
  for (const double x : xs) sum += x;
  s.mean = sum / static_cast<double>(xs.size());
  return s;
}

/// The "telemetry" object shared by per-run and aggregate blocks:
/// counters by name, then histogram summaries. `indent` is the prefix of
/// the object's own lines.
std::string telemetry_json(const telemetry::Registry& reg,
                           const std::string& indent) {
  const std::string inner = indent + "  ";
  std::string out;
  out += "{\n";
  out += inner + "\"counters\": {";
  const auto counters = reg.counters_snapshot();
  for (std::size_t i = 0; i < counters.size(); ++i) {
    out += i == 0 ? "\n" : ",\n";
    out += inner + "  \"" + json_escape(counters[i].name) +
           "\": " + std::to_string(counters[i].value);
  }
  out += counters.empty() ? "},\n" : "\n" + inner + "},\n";
  out += inner + "\"histograms\": [";
  const auto hists = reg.histograms_snapshot();
  for (std::size_t i = 0; i < hists.size(); ++i) {
    const auto& h = hists[i];
    out += i == 0 ? "\n" : ",\n";
    out += inner + "  {\"name\": \"" + json_escape(h.name) +
           "\", \"count\": " + std::to_string(h.count) +
           ", \"mean\": " + num(h.mean) +
           ", \"min\": " + std::to_string(h.min) +
           ", \"p50\": " + std::to_string(h.p50) +
           ", \"p95\": " + std::to_string(h.p95) +
           ", \"p99\": " + std::to_string(h.p99) +
           ", \"max\": " + std::to_string(h.max) + "}";
  }
  out += hists.empty() ? "]\n" : "\n" + inner + "]\n";
  out += indent + "}";
  return out;
}

}  // namespace

std::string metrics_json(const CampaignResult& result) {
  const ScenarioSpec& spec = result.scenario.spec;
  std::string out;
  out += "{\n";
  out += "  \"schema\": \"rac.faults.campaign/1\",\n";
  out += "  \"scenario\": {\n";
  out += "    \"name\": \"" + json_escape(spec.name) + "\",\n";
  out += "    \"nodes\": " + std::to_string(spec.nodes) + ",\n";
  out += "    \"group_target\": " + std::to_string(spec.group_target) + ",\n";
  out += "    \"seeds\": " + std::to_string(spec.seeds) + ",\n";
  out += "    \"base_seed\": " + std::to_string(spec.base_seed) + ",\n";
  out += "    \"duration_ms\": " +
         std::to_string(spec.duration / kMillisecond) + ",\n";
  out += "    \"traffic\": \"" + json_escape(spec.traffic) + "\",\n";
  out += "    \"events\": " + std::to_string(result.scenario.events.size()) +
         "\n";
  out += "  },\n";
  out += "  \"runs\": [\n";
  for (std::size_t r = 0; r < result.runs.size(); ++r) {
    const RunMetrics& m = result.runs[r];
    out += "    {\n";
    out += "      \"seed\": " + std::to_string(m.seed) + ",\n";
    out += "      \"delivered_payloads\": " +
           std::to_string(m.delivered_payloads) + ",\n";
    out += "      \"delivered_bytes\": " + std::to_string(m.delivered_bytes) +
           ",\n";
    out += "      \"goodput_bps\": " + num(m.goodput_bps) + ",\n";
    out += "      \"events\": " + std::to_string(m.events) + ",\n";
    out += "      \"messages_lost\": " + std::to_string(m.messages_lost) +
           ",\n";
    out += "      \"joins\": " + std::to_string(m.joins) + ",\n";
    out += "      \"leaves\": " + std::to_string(m.leaves) + ",\n";
    out += "      \"crashes\": " + std::to_string(m.crashes) + ",\n";
    out += "      \"evictions\": [\n";
    for (std::size_t e = 0; e < m.evictions.size(); ++e) {
      const EvictionOutcome& ev = m.evictions[e];
      out += "        {\"endpoint\": " + std::to_string(ev.endpoint) +
             ", \"when_ms\": " + num(to_seconds(ev.when) * 1e3) +
             ", \"scope\": \"" + (ev.group_scope ? "group" : "channel") +
             "\", \"class\": \"" + ev.cls + "\"}";
      out += e + 1 < m.evictions.size() ? ",\n" : "\n";
    }
    out += "      ],\n";
    out += "      \"true_evictions\": " + std::to_string(m.true_evictions) +
           ",\n";
    out += "      \"false_evictions\": " + std::to_string(m.false_evictions) +
           ",\n";
    out += "      \"departed_evictions\": " +
           std::to_string(m.departed_evictions) + ",\n";
    out += "      \"precision\": " + num(m.precision) + ",\n";
    out += "      \"recall\": " + num(m.recall) + ",\n";
    out += "      \"strategies\": [\n";
    for (std::size_t s = 0; s < m.strategies.size(); ++s) {
      const StrategyMetrics& sm = m.strategies[s];
      const LatencySummary lat = summarize(sm.detection_latency_s);
      out += "        {\"name\": \"" + json_escape(sm.name) +
             "\", \"kind\": \"" + json_escape(sm.kind) +
             "\", \"members\": " + std::to_string(sm.members) +
             ", \"activated_at_ms\": " +
             (sm.activated_at ? num(to_seconds(*sm.activated_at) * 1e3)
                              : std::string("null")) +
             ", \"detected\": " + std::to_string(sm.detected) +
             ", \"detection_latency_s\": {\"count\": " +
             std::to_string(lat.count) + ", \"mean\": " + num(lat.mean) +
             ", \"min\": " + num(lat.min) + ", \"p50\": " + num(lat.p50) +
             ", \"p95\": " + num(lat.p95) + ", \"p99\": " + num(lat.p99) +
             ", \"max\": " + num(lat.max) + "}}";
      out += s + 1 < m.strategies.size() ? ",\n" : "\n";
    }
    out += "      ],\n";
    out += "      \"telemetry\": ";
    if (m.telemetry) {
      out += telemetry_json(m.telemetry->registry(), "      ");
    } else {
      out += "null";
    }
    out += "\n";
    out += "    }";
    out += r + 1 < result.runs.size() ? ",\n" : "\n";
  }
  out += "  ],\n";

  // Aggregate over runs.
  double mean_delivered = 0.0;
  double mean_goodput = 0.0;
  double mean_precision = 0.0;
  double mean_recall = 0.0;
  std::uint64_t true_ev = 0;
  std::uint64_t false_ev = 0;
  std::uint64_t departed_ev = 0;
  for (const RunMetrics& m : result.runs) {
    mean_delivered += static_cast<double>(m.delivered_payloads);
    mean_goodput += m.goodput_bps;
    mean_precision += m.precision;
    mean_recall += m.recall;
    true_ev += m.true_evictions;
    false_ev += m.false_evictions;
    departed_ev += m.departed_evictions;
  }
  const double n = result.runs.empty()
                       ? 1.0
                       : static_cast<double>(result.runs.size());
  out += "  \"aggregate\": {\n";
  out += "    \"runs\": " + std::to_string(result.runs.size()) + ",\n";
  out += "    \"mean_delivered_payloads\": " + num(mean_delivered / n) + ",\n";
  out += "    \"mean_goodput_bps\": " + num(mean_goodput / n) + ",\n";
  out += "    \"true_evictions\": " + std::to_string(true_ev) + ",\n";
  out += "    \"false_evictions\": " + std::to_string(false_ev) + ",\n";
  out += "    \"departed_evictions\": " + std::to_string(departed_ev) + ",\n";
  out += "    \"mean_precision\": " + num(mean_precision / n) + ",\n";
  out += "    \"mean_recall\": " + num(mean_recall / n) + ",\n";
  // Campaign-wide telemetry: per-run registries folded in seed order
  // (runs[] is already seed-ordered whatever --jobs was; the merges
  // commute anyway, so this block is byte-stable across worker counts).
  telemetry::Registry merged;
  bool any_telemetry = false;
  for (const RunMetrics& m : result.runs) {
    if (m.telemetry) {
      merged.merge(m.telemetry->registry());
      any_telemetry = true;
    }
  }
  out += "    \"telemetry\": ";
  out += any_telemetry ? telemetry_json(merged, "    ") : "null";
  out += "\n";
  out += "  }\n";
  out += "}\n";
  return out;
}

std::string attacks_json(const CampaignResult& result,
                         const CampaignOptions& opts) {
  const ScenarioSpec& spec = result.scenario.spec;
  attacks::ReportMeta meta;
  meta.scenario = spec.name;
  meta.nodes = spec.nodes;
  meta.seeds = spec.seeds;
  meta.base_seed = spec.base_seed;
  meta.duration_ms = spec.duration / kMillisecond;
  meta.traffic = spec.traffic;
  meta.kernel = opts.shards > 0 ? "windowed" : "classic";
  meta.spec = spec.observer;
  std::vector<attacks::AttackReport> runs;
  runs.reserve(result.runs.size());
  // Seed order: result.runs is slot-indexed by seed whatever --jobs was.
  for (const RunMetrics& m : result.runs) {
    if (m.attack) runs.push_back(*m.attack);
  }
  return attacks::report_json(meta, runs);
}

}  // namespace rac::faults
