#include "faults/churn.hpp"

#include <algorithm>
#include <vector>

namespace rac::faults {

void ChurnProcess::start() {
  if (started_) return;
  started_ = true;
  if (config_.join_rate > 0.0) schedule_next(Kind::kJoin);
  if (config_.leave_rate > 0.0) schedule_next(Kind::kLeave);
  if (config_.crash_rate > 0.0) schedule_next(Kind::kCrash);
}

double ChurnProcess::rate_of(Kind kind) const {
  switch (kind) {
    case Kind::kJoin:
      return config_.join_rate;
    case Kind::kLeave:
      return config_.leave_rate;
    case Kind::kCrash:
      return config_.crash_rate;
  }
  return 0.0;
}

void ChurnProcess::schedule_next(Kind kind) {
  const double rate = rate_of(kind);
  if (rate <= 0.0) return;
  const SimDuration gap =
      std::max<SimDuration>(1, from_seconds(rng_.next_exponential(1.0 / rate)));
  const SimTime at = time_add_sat(sim_.simulator().now(), gap);
  if (config_.until > 0 && at >= config_.until) return;
  sim_.simulator().schedule(gap, [this, kind] { fire(kind); });
}

void ChurnProcess::fire(Kind kind) {
  if (stopped_) return;
  // Keep the arrival process independent of the action outcome: the next
  // arrival is scheduled before the action draws any victim/contact.
  schedule_next(kind);
  switch (kind) {
    case Kind::kJoin: {
      const std::ptrdiff_t contact = pick_contact();
      if (contact < 0) return;
      sim_.join_node(static_cast<std::size_t>(contact));
      ++joins_;
      return;
    }
    case Kind::kLeave:
    case Kind::kCrash: {
      const std::ptrdiff_t victim = pick_victim();
      if (victim < 0) return;
      const auto index = static_cast<std::size_t>(victim);
      departed_.insert(sim_.node(index).endpoint());
      sim_.leave_node(index, /*graceful=*/kind == Kind::kLeave);
      if (kind == Kind::kLeave) {
        ++leaves_;
      } else {
        ++crashes_;
      }
      return;
    }
  }
}

std::ptrdiff_t ChurnProcess::pick_victim() {
  std::vector<std::size_t> running;
  std::size_t population = 0;
  for (std::size_t i = 0; i < sim_.size(); ++i) {
    if (!sim_.node(i).running()) continue;
    ++population;
    if (!protected_.contains(i)) running.push_back(i);
  }
  // One draw per arrival regardless of eligibility, so the floor check
  // cannot shift later draws.
  const std::uint64_t pick =
      rng_.next_below(running.empty() ? 1 : running.size());
  if (running.empty() || population <= config_.min_population) return -1;
  return static_cast<std::ptrdiff_t>(running[pick]);
}

std::ptrdiff_t ChurnProcess::pick_contact() {
  std::vector<std::size_t> running;
  for (std::size_t i = 0; i < sim_.size(); ++i) {
    if (sim_.node(i).running()) running.push_back(i);
  }
  const std::uint64_t pick =
      rng_.next_below(running.empty() ? 1 : running.size());
  if (running.empty()) return -1;
  return static_cast<std::ptrdiff_t>(running[pick]);
}

void ChurnProcess::flash_crowd(std::size_t count) {
  for (std::size_t i = 0; i < count; ++i) {
    const std::ptrdiff_t contact = pick_contact();
    if (contact < 0) return;
    sim_.join_node(static_cast<std::size_t>(contact));
    ++joins_;
  }
}

}  // namespace rac::faults
