#include "faults/scenario.hpp"

#include <algorithm>
#include <charconv>
#include <cstdlib>
#include <stdexcept>

namespace rac::faults {

namespace {

std::string_view trim(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) {
    s.remove_prefix(1);
  }
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t' ||
                        s.back() == '\r')) {
    s.remove_suffix(1);
  }
  return s;
}

[[noreturn]] void fail(std::size_t line, const std::string& what) {
  throw std::runtime_error("scenario line " + std::to_string(line) + ": " +
                           what);
}

double to_double(std::string_view v, std::size_t line) {
  // std::from_chars<double> support varies; strtod on a bounded copy.
  const std::string buf(v);
  char* end = nullptr;
  const double d = std::strtod(buf.c_str(), &end);
  if (end != buf.c_str() + buf.size() || buf.empty()) {
    fail(line, "expected a number, got '" + buf + "'");
  }
  return d;
}

std::uint64_t to_u64(std::string_view v, std::size_t line) {
  std::uint64_t out = 0;
  const auto [p, ec] = std::from_chars(v.data(), v.data() + v.size(), out);
  if (ec != std::errc{} || p != v.data() + v.size()) {
    fail(line, "expected an integer, got '" + std::string(v) + "'");
  }
  return out;
}

/// Split on whitespace, keeping `a|b` and `k=v` tokens whole.
std::vector<std::string_view> tokenize(std::string_view s) {
  std::vector<std::string_view> out;
  std::size_t i = 0;
  while (i < s.size()) {
    while (i < s.size() && (s[i] == ' ' || s[i] == '\t')) ++i;
    std::size_t j = i;
    while (j < s.size() && s[j] != ' ' && s[j] != '\t') ++j;
    if (j > i) out.push_back(s.substr(i, j - i));
    i = j;
  }
  return out;
}

void apply_config(ScenarioSpec& spec, std::string_view key,
                  std::string_view value, std::size_t line) {
  if (key == "name") {
    spec.name = std::string(value);
  } else if (key == "nodes") {
    spec.nodes = static_cast<std::uint32_t>(to_u64(value, line));
  } else if (key == "group_target") {
    spec.group_target = static_cast<std::uint32_t>(to_u64(value, line));
  } else if (key == "seeds") {
    spec.seeds = static_cast<std::uint32_t>(to_u64(value, line));
  } else if (key == "base_seed") {
    spec.base_seed = to_u64(value, line);
  } else if (key == "duration_ms") {
    spec.duration = static_cast<SimDuration>(to_u64(value, line)) *
                    kMillisecond;
  } else if (key == "relays") {
    spec.relays = static_cast<unsigned>(to_u64(value, line));
  } else if (key == "rings") {
    spec.rings = static_cast<unsigned>(to_u64(value, line));
  } else if (key == "payload_bytes") {
    spec.payload_bytes = static_cast<std::size_t>(to_u64(value, line));
  } else if (key == "send_period_ms") {
    spec.send_period = static_cast<SimDuration>(to_u64(value, line)) *
                       kMillisecond;
  } else if (key == "saturation_window") {
    spec.saturation_window = static_cast<std::size_t>(to_u64(value, line));
  } else if (key == "check_timeout_ms") {
    spec.check_timeout = static_cast<SimDuration>(to_u64(value, line)) *
                         kMillisecond;
  } else if (key == "sweep_ms") {
    spec.check_sweep_period = static_cast<SimDuration>(to_u64(value, line)) *
                              kMillisecond;
  } else if (key == "follower_t") {
    spec.follower_t = static_cast<unsigned>(to_u64(value, line));
  } else if (key == "opponent_fraction") {
    spec.opponent_fraction = to_double(value, line);
  } else if (key == "smin") {
    spec.smin = static_cast<std::uint32_t>(to_u64(value, line));
  } else if (key == "smax") {
    spec.smax = static_cast<std::uint32_t>(to_u64(value, line));
  } else if (key == "link_bps") {
    spec.link_bps = to_double(value, line);
  } else if (key == "propagation_us") {
    spec.propagation = static_cast<SimDuration>(to_u64(value, line)) *
                       kMicrosecond;
  } else if (key == "traffic") {
    if (value != "uniform" && value != "uniform_no_noise" &&
        value != "noise" && value != "none") {
      fail(line, "traffic must be 'uniform', 'uniform_no_noise', 'noise' "
                 "or 'none'");
    }
    spec.traffic = std::string(value);
  } else if (key == "traffic_senders") {
    try {
      spec.traffic_senders = parse_index_list(value);
    } catch (const std::runtime_error& e) {
      fail(line, e.what());
    }
  } else if (key == "observer") {
    if (value == "none") {
      spec.observer.mode = attacks::ObserverMode::kNone;
    } else if (value == "global") {
      spec.observer.mode = attacks::ObserverMode::kGlobal;
    } else if (value == "fraction") {
      spec.observer.mode = attacks::ObserverMode::kFraction;
    } else {
      fail(line, "observer must be 'none', 'global' or 'fraction'");
    }
  } else if (key == "observer_fraction") {
    spec.observer.fraction = to_double(value, line);
  } else if (key == "observer_window_ms") {
    spec.observer.window = static_cast<SimDuration>(to_u64(value, line)) *
                           kMillisecond;
  } else if (key == "observer_clock_ms") {
    spec.observer.clock = static_cast<SimDuration>(to_u64(value, line)) *
                          kMillisecond;
  } else if (key == "observer_stride") {
    spec.observer.stride = static_cast<unsigned>(to_u64(value, line));
  } else if (key == "observer_max_obs") {
    spec.observer.max_observations =
        static_cast<unsigned>(to_u64(value, line));
  } else if (key == "observer_targets") {
    spec.observer.targets = static_cast<unsigned>(to_u64(value, line));
  } else if (key == "observer_data_floor") {
    spec.observer.data_floor = static_cast<std::size_t>(to_u64(value, line));
  } else if (key == "observer_tolerance") {
    spec.observer.tolerance = to_double(value, line);
  } else if (key == "attacks") {
    spec.observer.run_intersection = false;
    spec.observer.run_predecessor = false;
    spec.observer.run_first_spy = false;
    std::size_t start = 0;
    while (start <= value.size()) {
      const std::size_t comma = std::min(value.find(',', start),
                                         value.size());
      const std::string_view name = trim(value.substr(start, comma - start));
      if (name == "intersection") {
        spec.observer.run_intersection = true;
      } else if (name == "predecessor") {
        spec.observer.run_predecessor = true;
      } else if (name == "first_spy") {
        spec.observer.run_first_spy = true;
      } else {
        fail(line, "unknown attack '" + std::string(name) +
                       "' (intersection, predecessor, first_spy)");
      }
      if (comma == value.size()) break;
      start = comma + 1;
    }
  } else if (key == "blacklist_round_ms") {
    spec.blacklist_round_period =
        static_cast<SimDuration>(to_u64(value, line)) * kMillisecond;
  } else {
    fail(line, "unknown config key '" + std::string(key) + "'");
  }
}

constexpr std::string_view kVerbs[] = {
    "strategy",  "strategy_off", "loss",   "loss_off",
    "jitter",    "jitter_off",   "throttle", "throttle_off",
    "partition", "partition_off", "churn", "flashcrowd",
};

}  // namespace

std::vector<std::size_t> parse_index_list(std::string_view text) {
  std::vector<std::size_t> out;
  std::size_t i = 0;
  const auto read_number = [&]() {
    std::size_t j = i;
    while (j < text.size() && text[j] >= '0' && text[j] <= '9') ++j;
    if (j == i) {
      throw std::runtime_error("bad index list '" + std::string(text) + "'");
    }
    std::size_t value = 0;
    std::from_chars(text.data() + i, text.data() + j, value);
    i = j;
    return value;
  };
  while (i < text.size()) {
    const std::size_t lo = read_number();
    std::size_t hi = lo;
    if (i < text.size() && text[i] == '-') {
      ++i;
      hi = read_number();
    }
    if (hi < lo) {
      throw std::runtime_error("bad index range in '" + std::string(text) +
                               "'");
    }
    for (std::size_t v = lo; v <= hi; ++v) out.push_back(v);
    if (i < text.size()) {
      if (text[i] != ',') {
        throw std::runtime_error("bad index list '" + std::string(text) +
                                 "'");
      }
      ++i;
    }
  }
  return out;
}

Scenario parse_scenario(std::string_view text) {
  Scenario scenario;
  std::size_t line_no = 0;
  std::size_t pos = 0;
  while (pos <= text.size()) {
    const std::size_t eol = std::min(text.find('\n', pos), text.size());
    std::string_view line = text.substr(pos, eol - pos);
    pos = eol + 1;
    ++line_no;
    if (const std::size_t hash = line.find('#');
        hash != std::string_view::npos) {
      line = line.substr(0, hash);
    }
    line = trim(line);
    if (line.empty()) continue;

    if (line.starts_with("on ") || line.starts_with("on\t")) {
      const auto tokens = tokenize(line.substr(3));
      if (tokens.size() < 2) fail(line_no, "expected: on <ms> <verb> ...");
      ScenarioEvent ev;
      ev.at = static_cast<SimTime>(to_u64(tokens[0], line_no)) * kMillisecond;
      ev.verb = std::string(tokens[1]);
      if (std::find(std::begin(kVerbs), std::end(kVerbs), ev.verb) ==
          std::end(kVerbs)) {
        fail(line_no, "unknown event verb '" + ev.verb + "'");
      }
      for (std::size_t t = 2; t < tokens.size(); ++t) {
        const std::string_view tok = tokens[t];
        const std::size_t eq = tok.find('=');
        if (eq == std::string_view::npos) {
          ev.args.emplace_back(tok);
        } else {
          ev.params[std::string(tok.substr(0, eq))] =
              std::string(tok.substr(eq + 1));
        }
      }
      scenario.events.push_back(std::move(ev));
      continue;
    }

    const std::size_t eq = line.find('=');
    if (eq == std::string_view::npos) {
      fail(line_no, "expected 'key = value' or 'on <ms> <verb> ...'");
    }
    apply_config(scenario.spec, trim(line.substr(0, eq)),
                 trim(line.substr(eq + 1)), line_no);
  }
  std::stable_sort(
      scenario.events.begin(), scenario.events.end(),
      [](const ScenarioEvent& a, const ScenarioEvent& b) { return a.at < b.at; });
  return scenario;
}

SimulationConfig ScenarioSpec::to_simulation_config(std::uint64_t seed) const {
  SimulationConfig cfg;
  cfg.num_nodes = nodes;
  cfg.group_target = group_target;
  cfg.seed = seed;
  cfg.node.num_relays = relays;
  cfg.node.num_rings = rings;
  cfg.node.payload_size = payload_bytes;
  cfg.node.send_period = send_period;
  cfg.node.saturation_window = saturation_window;
  cfg.node.check_timeout = check_timeout;
  cfg.node.check_sweep_period = check_sweep_period;
  cfg.node.follower_quorum_t = follower_t;
  cfg.node.assumed_opponent_fraction = opponent_fraction;
  cfg.node.smin = smin;
  cfg.node.smax = smax;
  cfg.node.link_bps = link_bps;
  cfg.network.link_bps = link_bps;
  cfg.network.propagation = propagation;
  return cfg;
}

}  // namespace rac::faults
