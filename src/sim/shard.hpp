// Conservative time-window barrier for the sharded DES kernel.
//
// A sharded run partitions endpoints across K independent `Simulator`
// instances (shard engines). Simulated time advances in fixed windows of
// one lookahead L, aligned to global multiples of L: during a window every
// shard executes its own events concurrently (each touching only state
// owned by its endpoints), and at the window boundary the single-threaded
// coordinator drains cross-shard mailboxes, applies deferred driver work
// and opens the next window. Because every message needs at least L of
// simulated latency (uplink serialization + propagation + the impairment
// plane's declared lower bound), a message sent inside window k can only
// arrive at or after boundary k+1 — so shards never need to look at each
// other mid-window and the schedule is conservative in the classic
// Chandy-Misra sense.
//
// ShardGroup owns the K worker threads. Workers park on a condition
// variable between windows; run_all_until() publishes a target time,
// wakes everyone, and blocks until all engines reach it. The coordinator's
// thread-local telemetry collector is re-installed on every worker for the
// duration of each window so counter/histogram record sites (relaxed
// atomics, commutative) keep working from shard threads. Worker exceptions
// (e.g. the lookahead-violation guard in sim::Network) are captured and
// rethrown on the coordinator in shard-index order.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

#include "common/time.hpp"

namespace rac::telemetry {
class Collector;
}

namespace rac::sim {

class Simulator;

class ShardGroup {
 public:
  /// Non-owning: the engines must outlive the group.
  explicit ShardGroup(std::vector<Simulator*> engines);
  ~ShardGroup();
  ShardGroup(const ShardGroup&) = delete;
  ShardGroup& operator=(const ShardGroup&) = delete;

  unsigned size() const { return static_cast<unsigned>(engines_.size()); }

  /// Run every shard engine to `t` in parallel and block until all are
  /// done. `inclusive` selects Simulator::run_until (events at exactly `t`
  /// run — the tail segment of Simulation::run_for) vs run_until_exclusive
  /// (the normal window body). The calling thread's telemetry collector is
  /// installed on each worker for the duration. Rethrows the first worker
  /// exception in shard-index order.
  void run_all_until(SimTime t, bool inclusive);

 private:
  void worker_loop(unsigned index);

  std::vector<Simulator*> engines_;
  std::vector<std::thread> threads_;

  std::mutex mu_;
  std::condition_variable cv_work_;
  std::condition_variable cv_done_;
  std::uint64_t generation_ = 0;  // bumped per window; workers latch it
  unsigned busy_ = 0;
  bool stop_ = false;
  SimTime target_ = 0;
  bool inclusive_ = false;
  telemetry::Collector* collector_ = nullptr;
  std::vector<std::exception_ptr> errors_;
};

}  // namespace rac::sim
