#include "sim/shard.hpp"

#include <stdexcept>

#include "sim/engine.hpp"
#include "telemetry/telemetry.hpp"

namespace rac::sim {

ShardGroup::ShardGroup(std::vector<Simulator*> engines)
    : engines_(std::move(engines)) {
  if (engines_.empty()) {
    throw std::invalid_argument("ShardGroup: no engines");
  }
  errors_.resize(engines_.size());
  threads_.reserve(engines_.size());
  for (unsigned i = 0; i < engines_.size(); ++i) {
    threads_.emplace_back([this, i] { worker_loop(i); });
  }
}

ShardGroup::~ShardGroup() {
  {
    const std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_work_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void ShardGroup::run_all_until(SimTime t, bool inclusive) {
  std::unique_lock<std::mutex> lock(mu_);
  target_ = t;
  inclusive_ = inclusive;
  collector_ = telemetry::current();
  busy_ = size();
  ++generation_;
  cv_work_.notify_all();
  cv_done_.wait(lock, [this] { return busy_ == 0; });
  // Rethrow the first (lowest-shard) error, but clear every slot first:
  // errors from other shards in the same window must not leak into (and
  // spuriously fail) a later, successful window.
  std::exception_ptr first;
  for (std::exception_ptr& e : errors_) {
    if (e && !first) first = e;
    e = nullptr;
  }
  if (first) std::rethrow_exception(first);
}

void ShardGroup::worker_loop(unsigned index) {
  std::uint64_t seen = 0;
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    cv_work_.wait(lock, [&] { return stop_ || generation_ != seen; });
    if (stop_) return;
    seen = generation_;
    const SimTime t = target_;
    const bool inclusive = inclusive_;
    telemetry::Collector* collector = collector_;
    lock.unlock();
    try {
      // Counters/histograms record through relaxed atomics and merge
      // commutatively, so sharing the run's collector across shard
      // threads is deterministic; span tracing is not thread-safe and is
      // rejected up front for sharded runs (see faults::run_scenario).
      const telemetry::Install install(collector);
      if (inclusive) {
        engines_[index]->run_until(t);
      } else {
        engines_[index]->run_until_exclusive(t);
      }
    } catch (...) {
      lock.lock();
      errors_[index] = std::current_exception();
      if (--busy_ == 0) cv_done_.notify_all();
      continue;
    }
    lock.lock();
    if (--busy_ == 0) cv_done_.notify_all();
  }
}

}  // namespace rac::sim
