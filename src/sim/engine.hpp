// Discrete-event simulation kernel (the repo's Omnet++ substitute).
//
// Single-threaded, deterministic: events at the same timestamp fire in
// scheduling order (a monotonically increasing sequence number breaks
// ties), and all randomness flows from the simulator-owned RNG. Two runs
// with the same seed produce identical traces.
//
// Hot-path design (see DESIGN.md, "Simulation kernel"):
//  - closures are `InplaceCallback`s — move-only, small-buffer-optimized,
//    no heap allocation for typical protocol captures;
//  - event slots live in a pooled free-list so steady-state scheduling
//    performs zero allocations once the pool has warmed up;
//  - the pending set is a hybrid of a calendar-queue timing wheel for the
//    near future (where serialization/propagation delays cluster) and a
//    binary min-heap of POD handles for far-future timers. Ordering is by
//    (time, seq) everywhere, so the hybrid is trace-identical to a single
//    totally-ordered queue.
#pragma once

#include <array>
#include <cstdint>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/rng.hpp"
#include "common/time.hpp"
#include "sim/callback.hpp"

namespace rac::sim {

class Simulator {
 public:
  explicit Simulator(std::uint64_t seed = 1);

  SimTime now() const { return now_; }
  Rng& rng() { return rng_; }

  /// Schedule `fn` to run `delay` nanoseconds from now (delay >= 0).
  /// Templated so the callable is constructed directly inside its pooled
  /// event slot — no intermediate InplaceCallback relocations on the hot
  /// path.
  template <typename F>
  void schedule(SimDuration delay, F&& fn) {
    if (delay < 0) throw_negative_delay();
    schedule_at(now_ + delay, std::forward<F>(fn));
  }
  /// Schedule `fn` at absolute time `t` (t >= now()).
  template <typename F>
  void schedule_at(SimTime t, F&& fn) {
    static_assert(std::is_invocable_r_v<void, std::decay_t<F>&>,
                  "Simulator::schedule: callable must be invocable as "
                  "void()");
    if (t < now_) throw_past_schedule();
    const std::uint32_t idx = acquire_slot();
    slots_[idx].emplace(std::forward<F>(fn));
    insert_handle(Handle{t, next_seq_++, idx});
    ++size_;
  }

  /// Run the earliest pending event. Returns false when the queue is empty.
  bool step();

  /// Run events until simulated time passes `t` or the queue drains.
  /// Events at exactly `t` run, including ones scheduled at `t` *by* a
  /// boundary event; afterwards now() == t (or later if an event fired at
  /// a later time — impossible here since events beyond `t` stay queued).
  void run_until(SimTime t);
  /// Run events strictly before `t`, then advance now() to `t`. Events at
  /// exactly `t` stay queued — this is the conservative-window primitive of
  /// the sharded kernel (src/sim/shard.hpp): a window [b, b+L) executes
  /// with run_until_exclusive(b+L), leaving boundary events for the next
  /// window so every shard agrees on which window owns a timestamp.
  void run_until_exclusive(SimTime t);
  void run_for(SimDuration d) { run_until(time_add_sat(now_, d)); }
  /// Drain the queue completely (use in tests with finite workloads).
  void run_to_completion();

  std::uint64_t events_processed() const { return events_processed_; }
  std::size_t pending_events() const { return size_; }

  /// Pooled event slots currently allocated (high-water mark of concurrent
  /// pending events; exposed for the no-allocation steady-state tests).
  std::size_t slot_pool_size() const { return slots_.size(); }

  /// Pull-based kernel introspection for the telemetry sampler: a snapshot
  /// of where the pending set lives (wheel vs far heap vs behind-cursor
  /// overflow). Reading it costs a few loads — the dispatch loop itself
  /// carries no per-event record site (the <2% bench_smoke budget).
  struct KernelTelemetry {
    std::uint64_t events_processed = 0;
    std::size_t pending = 0;        // total queued events
    std::size_t wheel = 0;          // on the calendar wheel (incl. cur run)
    std::size_t overflow = 0;       // behind-cursor min-heap
    std::size_t far_heap = 0;       // beyond the wheel window
    std::size_t slot_pool = 0;      // pooled slots ever allocated
  };
  KernelTelemetry kernel_telemetry() const {
    return KernelTelemetry{events_processed_, size_,        wheel_count_,
                           overflow_.size(), heap_.size(), slots_.size()};
  }

  /// Gate push-based kernel-internals telemetry (the bucket-drain
  /// histogram). The sharded kernel turns this off on per-shard engines:
  /// drain shapes depend on the shard count, and recording them would make
  /// otherwise bit-identical campaign artifacts K-variant. Protocol-level
  /// telemetry is unaffected.
  void set_internal_telemetry(bool enabled) { internal_telemetry_ = enabled; }

 private:
  // Calendar-queue geometry: 16384 buckets of 2^13 ns (8.192 us) cover a
  // ~134 ms near-future window — wide enough that uplink/downlink
  // serialization, propagation and burst fan-out events (the DES bulk)
  // stay on the wheel, while sweep timers and join settle timers overflow
  // to the far heap. Chosen by sweeping bench/micro_engine over
  // (shift, bits) ∈ {11..13} x {12..15}.
  static constexpr unsigned kBucketShift = 13;
  static constexpr unsigned kWheelBits = 14;
  static constexpr std::size_t kNumBuckets = std::size_t{1} << kWheelBits;
  static constexpr std::size_t kWheelMask = kNumBuckets - 1;

  /// POD ordering handle; the closure stays put in its pooled slot.
  struct Handle {
    SimTime time;
    std::uint64_t seq;
    std::uint32_t slot;
  };
  struct HandleAfter {  // min-heap comparator for the far-future heap
    bool operator()(const Handle& a, const Handle& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };
  static bool handle_before(const Handle& a, const Handle& b);

  [[noreturn]] static void throw_negative_delay();
  [[noreturn]] static void throw_past_schedule();

  /// Pop a free slot (or grow the pool); the slot's callback is empty and
  /// ready for emplace().
  std::uint32_t acquire_slot();
  void release_slot(std::uint32_t idx);
  void insert_handle(const Handle& h);
  void park_in_bucket(const Handle& h);
  /// Circular distance (>= 1) from the cursor to the next occupied bucket.
  /// Precondition: at least one bucket bit is set.
  std::size_t next_occupied_distance() const;
  /// Drain bucket `b`'s parked chain into cur_run_ in (time, seq) order
  /// and recycle its nodes. Dense buckets use a stable LSD radix sort on
  /// the in-page time offset (all entries share the page bits).
  void load_bucket_into_run(std::size_t b);
  /// Advance the wheel cursor until the next pending handle is exposed at
  /// cur_run_[run_pos_] or overflow_.front() (next_from_overflow_ records
  /// which); returns nullptr when nothing is pending. Mutates cursor state
  /// but never executes or drops events.
  const Handle* peek();
  /// Pop the handle exposed by the last peek() and run it.
  void execute_next();
  /// Move far-heap entries that now fall inside the wheel window onto it.
  void migrate_from_heap();

  SimTime now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t events_processed_ = 0;
  std::size_t size_ = 0;
  bool internal_telemetry_ = true;

  // Pooled event slots. A slot is just the closure (exactly 32 bytes: two
  // per cache line, shift-indexable). Free slots are recycled LIFO via an
  // index stack rather than an intrusive list: popping an index never
  // touches slot memory, so back-to-back schedules don't serialize on
  // dependent cache misses walking the free chain — the slot line is only
  // touched by the (non-blocking) closure store.
  static_assert(sizeof(InplaceCallback) == 32);
  std::vector<InplaceCallback> slots_;
  std::vector<std::uint32_t> free_slots_;

  // Timing wheel. cursor_page_ is the absolute bucket number (time >>
  // kBucketShift) the cursor sits on; wheel_end_ is the first timestamp
  // beyond the wheel window. cur_run_ holds the cursor bucket's handles
  // sorted by (time, seq) with run_pos_ the next unfired entry; overflow_
  // is a small min-heap for events scheduled at or behind the cursor while
  // the run drains (same-timestamp follow-ups), avoiding O(n) sorted
  // inserts into cur_run_.
  //
  // Parked handles live as intrusive chains through one shared node arena
  // rather than a vector per bucket: a single arena's high-water mark
  // converges globally, so steady-state parking never allocates (16384
  // individual vectors would keep regrowing as the active window moves).
  // Each bucket fans out over kChainsPerBucket chains keyed by low time
  // bits — equal timestamps always share a chain (tie order survives), and
  // the loader walks the chains interleaved so the dependent-pointer-chase
  // cache misses overlap instead of serializing.
  static constexpr std::uint32_t kNilNode = 0xFFFF'FFFFu;
  static constexpr unsigned kChainsPerBucket = 4;
  struct ParkedNode {
    Handle h;
    std::uint32_t next;
  };
  static unsigned chain_of(SimTime t) {
    // Mix a few low bits so times quantized to hardware granularities
    // (e.g. whole multiples of 8 ns at 1 Gb/s) still spread over chains.
    return static_cast<unsigned>(t ^ (t >> 3)) & (kChainsPerBucket - 1);
  }
  std::vector<ParkedNode> park_arena_;
  std::vector<std::uint32_t> free_nodes_;
  std::array<std::uint32_t, kNumBuckets * kChainsPerBucket> bucket_head_;
  std::array<std::vector<Handle>, kChainsPerBucket> chain_buf_;
  /// One bit per bucket (set = non-empty); lets the cursor hop straight to
  /// the next occupied bucket instead of probing empties one by one.
  std::array<std::uint64_t, kNumBuckets / 64> occupancy_{};
  std::int64_t cursor_page_ = 0;
  SimTime wheel_end_ = static_cast<SimTime>(kNumBuckets) << kBucketShift;
  std::vector<Handle> cur_run_;
  std::vector<Handle> scratch_;  // radix-sort ping buffer, capacity reused
  std::size_t run_pos_ = 0;
  std::vector<Handle> overflow_;  // min-heap via HandleAfter
  bool next_from_overflow_ = false;  // set by peek() for execute_next()
  std::size_t wheel_count_ = 0;  // handles on the wheel incl. cur_run_ tail

  // Far-future min-heap (std::push_heap/pop_heap over PODs).
  std::vector<Handle> heap_;

  Rng rng_;
};

}  // namespace rac::sim
