// Discrete-event simulation kernel (the repo's Omnet++ substitute).
//
// Single-threaded, deterministic: events at the same timestamp fire in
// scheduling order (a monotonically increasing sequence number breaks
// ties), and all randomness flows from the simulator-owned RNG. Two runs
// with the same seed produce identical traces.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "common/rng.hpp"
#include "common/time.hpp"

namespace rac::sim {

class Simulator {
 public:
  explicit Simulator(std::uint64_t seed = 1);

  SimTime now() const { return now_; }
  Rng& rng() { return rng_; }

  /// Schedule `fn` to run `delay` nanoseconds from now (delay >= 0).
  void schedule(SimDuration delay, std::function<void()> fn);
  /// Schedule `fn` at absolute time `t` (t >= now()).
  void schedule_at(SimTime t, std::function<void()> fn);

  /// Run the earliest pending event. Returns false when the queue is empty.
  bool step();

  /// Run events until simulated time passes `t` or the queue drains.
  void run_until(SimTime t);
  void run_for(SimDuration d) { run_until(now_ + d); }
  /// Drain the queue completely (use in tests with finite workloads).
  void run_to_completion();

  std::uint64_t events_processed() const { return events_processed_; }
  std::size_t pending_events() const { return queue_.size(); }

 private:
  struct Event {
    SimTime time;
    std::uint64_t seq;
    std::function<void()> fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  SimTime now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t events_processed_ = 0;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
  Rng rng_;
};

}  // namespace rac::sim
