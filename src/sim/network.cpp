#include "sim/network.hpp"

#include <algorithm>
#include <stdexcept>

#include "telemetry/telemetry.hpp"

namespace rac::sim {

Payload make_payload(Bytes bytes) {
  return std::make_shared<const Bytes>(std::move(bytes));
}

Network::Network(Simulator& sim, NetworkConfig config)
    : sim_(sim), config_(config) {
  if (config_.link_bps <= 0) {
    throw std::invalid_argument("Network: link_bps must be positive");
  }
}

EndpointId Network::add_endpoint(Handler handler) {
  endpoints_.emplace_back(std::move(handler));
  return static_cast<EndpointId>(endpoints_.size() - 1);
}

std::uint32_t Network::acquire_transfer() {
  if (transfer_free_ != kNilTransfer) {
    const std::uint32_t idx = transfer_free_;
    transfer_free_ = transfers_[idx].next_free;
    return idx;
  }
  transfers_.emplace_back();
  return static_cast<std::uint32_t>(transfers_.size() - 1);
}

void Network::release_transfer(std::uint32_t idx) {
  Transfer& t = transfers_[idx];
  t.payload.reset();
  t.arrived = false;
  t.next_free = transfer_free_;
  transfer_free_ = idx;
}

void Network::send(EndpointId from, EndpointId to, Payload payload,
                   std::size_t wire_bytes) {
  if (from >= endpoints_.size() || to >= endpoints_.size()) {
    throw std::out_of_range("Network::send: unknown endpoint");
  }
  if (from == to) {
    throw std::invalid_argument("Network::send: self-send not modelled");
  }
  const std::size_t bytes = wire_bytes != 0 ? wire_bytes : payload->size();

  // Impairment plane: one verdict per message, drawn from the plane's own
  // RNG substreams (so an idle plane leaves the trace untouched).
  LinkVerdict verdict;
  if (impairment_ != nullptr) impairment_->apply(from, to, bytes, verdict);
  SimDuration tx = transmission_delay(bytes, config_.link_bps);
  if (verdict.tx_scale != 1.0) {
    tx = std::max<SimDuration>(
        1, static_cast<SimDuration>(static_cast<double>(tx) *
                                    verdict.tx_scale));
  }

  Endpoint& src = endpoints_[from];

  // Uplink serialization (FIFO behind any queued transmissions).
  const SimTime up_start = std::max(sim_.now(), src.uplink_free);
  const SimTime up_end = up_start + tx;
  src.uplink_free = up_end;
  src.stats.messages_sent++;
  src.stats.bytes_sent += bytes;
  total_bytes_ += bytes;
  RAC_TELEM_COUNT(kNetMessagesSent, 1);
  RAC_TELEM_COUNT(kNetBytesSent, bytes);
  RAC_TELEM_HIST(kNetUplinkWaitNs, up_start - sim_.now());
  if (tap_) tap_(from, to, bytes, sim_.now());

  // Dropped messages occupy the uplink but never arrive (tail drop after
  // the bottleneck).
  if (verdict.drop) {
    ++messages_lost_;
    RAC_TELEM_COUNT(kNetMessagesDropped, 1);
    return;
  }

  // Fast path: all per-message state goes into one pooled Transfer record;
  // the scheduled closure captures just {this, index}. Downlink occupancy
  // is still computed lazily at arrival time (inside on_transfer_event) so
  // FIFO order across senders follows arrival order, exactly as before.
  const std::uint32_t idx = acquire_transfer();
  Transfer& t = transfers_[idx];
  t.payload = std::move(payload);
  t.tx = tx;
  t.bytes = bytes;
  t.from = from;
  t.to = to;

  const auto fire = [this, idx] { on_transfer_event(idx); };
  static_assert(InplaceCallback::fits_inline<decltype(fire)>,
                "Network transfer closure must not allocate");
  sim_.schedule_at(up_end + config_.propagation + verdict.extra_delay, fire);
}

void Network::on_transfer_event(std::uint32_t idx) {
  Transfer& t = transfers_[idx];
  if (!t.arrived) {
    // Arrival at the destination downlink after propagation; FIFO there.
    // The same pooled record re-arms for the delivery event — one transfer
    // object, two kernel firings, zero allocations.
    t.arrived = true;
    Endpoint& d = endpoints_[t.to];
    const SimTime down_start = std::max(sim_.now(), d.downlink_free);
    const SimTime down_end = down_start + t.tx;
    d.downlink_free = down_end;
    RAC_TELEM_HIST(kNetDownlinkWaitNs, down_start - sim_.now());
    sim_.schedule_at(down_end, [this, idx] { on_transfer_event(idx); });
    return;
  }
  // Delivery. Free the slot before invoking the handler: the handler may
  // send (reusing this very slot), and `transfers_` may grow meanwhile, so
  // copy out what we need first.
  const EndpointId from = t.from;
  const EndpointId to = t.to;
  const std::size_t bytes = t.bytes;
  const Payload payload = std::move(t.payload);
  release_transfer(idx);
  Endpoint& dd = endpoints_[to];
  dd.stats.messages_received++;
  dd.stats.bytes_received += bytes;
  dd.handler(from, payload);
}

SimTime Network::uplink_busy_until(EndpointId node) const {
  return std::max(sim_.now(), endpoints_.at(node).uplink_free);
}

SimDuration Network::total_uplink_backlog() const {
  SimDuration total = 0;
  const SimTime now = sim_.now();
  for (const Endpoint& e : endpoints_) {
    if (e.uplink_free > now) total += e.uplink_free - now;
  }
  return total;
}

const LinkStats& Network::stats(EndpointId node) const {
  return endpoints_.at(node).stats;
}

}  // namespace rac::sim
