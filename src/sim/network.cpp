#include "sim/network.hpp"

#include <stdexcept>

namespace rac::sim {

Payload make_payload(Bytes bytes) {
  return std::make_shared<const Bytes>(std::move(bytes));
}

Network::Network(Simulator& sim, NetworkConfig config)
    : sim_(sim), config_(config) {
  if (config_.link_bps <= 0) {
    throw std::invalid_argument("Network: link_bps must be positive");
  }
}

EndpointId Network::add_endpoint(Handler handler) {
  endpoints_.push_back(Endpoint{std::move(handler), 0, 0, {}});
  return static_cast<EndpointId>(endpoints_.size() - 1);
}

void Network::send(EndpointId from, EndpointId to, Payload payload,
                   std::size_t wire_bytes) {
  if (from >= endpoints_.size() || to >= endpoints_.size()) {
    throw std::out_of_range("Network::send: unknown endpoint");
  }
  if (from == to) {
    throw std::invalid_argument("Network::send: self-send not modelled");
  }
  const std::size_t bytes = wire_bytes != 0 ? wire_bytes : payload->size();
  const SimDuration tx = transmission_delay(bytes, config_.link_bps);

  Endpoint& src = endpoints_[from];

  // Uplink serialization (FIFO behind any queued transmissions).
  const SimTime up_start = std::max(sim_.now(), src.uplink_free);
  const SimTime up_end = up_start + tx;
  src.uplink_free = up_end;
  src.stats.messages_sent++;
  src.stats.bytes_sent += bytes;
  total_bytes_ += bytes;
  if (tap_) tap_(from, to, bytes, sim_.now());

  // Lossy-network mode: the transmission occupies the uplink but never
  // arrives (tail drop after the bottleneck).
  if (config_.loss_rate > 0.0 && sim_.rng().next_bool(config_.loss_rate)) {
    ++messages_lost_;
    return;
  }

  // Arrival at the destination downlink after propagation; FIFO there too.
  // Downlink occupancy is computed lazily at arrival time via a scheduled
  // closure so FIFO order across senders follows arrival order.
  sim_.schedule_at(up_end + config_.propagation, [this, from, to, payload,
                                                  bytes, tx]() {
    Endpoint& d = endpoints_[to];
    const SimTime down_start = std::max(sim_.now(), d.downlink_free);
    const SimTime down_end = down_start + tx;
    d.downlink_free = down_end;
    sim_.schedule_at(down_end, [this, from, to, payload, bytes]() {
      Endpoint& dd = endpoints_[to];
      dd.stats.messages_received++;
      dd.stats.bytes_received += bytes;
      dd.handler(from, payload);
    });
  });
}

SimTime Network::uplink_busy_until(EndpointId node) const {
  return std::max(sim_.now(), endpoints_.at(node).uplink_free);
}

const LinkStats& Network::stats(EndpointId node) const {
  return endpoints_.at(node).stats;
}

}  // namespace rac::sim
