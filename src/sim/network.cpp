#include "sim/network.hpp"

#include <algorithm>
#include <stdexcept>

#include "telemetry/telemetry.hpp"

namespace rac::sim {

Network::Network(Simulator& sim, NetworkConfig config)
    : sim_(sim), config_(config) {
  if (config_.link_bps <= 0) {
    throw std::invalid_argument("Network: link_bps must be positive");
  }
}

EndpointId Network::add_endpoint(Handler handler) {
  endpoints_.emplace_back(std::move(handler));
  if (impairment_ != nullptr) {
    impairment_->reserve_endpoints(endpoints_.size());
  }
  return static_cast<EndpointId>(endpoints_.size() - 1);
}

void Network::set_tap(Tap tap) { tap_ = std::move(tap); }

void Network::enable_sharding(std::vector<Simulator*> engines) {
  if (engines.empty()) {
    throw std::invalid_argument("Network::enable_sharding: no engines");
  }
  if (!shards_.empty()) {
    throw std::logic_error("Network::enable_sharding: already sharded");
  }
  shards_.resize(engines.size());
  for (std::size_t k = 0; k < engines.size(); ++k) {
    shards_[k].engine = engines[k];
    shards_[k].outbox.resize(engines.size());
  }
  refresh_lookahead();
  if (impairment_ != nullptr) {
    impairment_->reserve_endpoints(endpoints_.size());
  }
}

void Network::refresh_lookahead() {
  if (shards_.empty()) return;
  // Cheapest possible one-way trip: 1 ns of uplink serialization (the
  // serialization floor send() enforces even under throttle scaling) plus
  // propagation, plus whatever latency reduction the impairment plane
  // declares it may apply.
  SimDuration extra_min = 0;
  if (impairment_ != nullptr) {
    extra_min = std::min<SimDuration>(0, impairment_->min_extra_delay());
  }
  const SimDuration lookahead = 1 + config_.propagation + extra_min;
  if (lookahead <= 0) {
    throw std::invalid_argument(
        "Network: impairment min_extra_delay leaves a non-positive "
        "lookahead; sharding needs a positive minimum link latency");
  }
  window_len_ = lookahead;
}

SimTime Network::context_now(EndpointId ep) const {
  if (shards_.empty()) return sim_.now();
  return shards_[shard_of(ep)].engine->now();
}

std::uint32_t Network::acquire_transfer() {
  if (transfer_free_ != kNilTransfer) {
    const std::uint32_t idx = transfer_free_;
    transfer_free_ = transfers_[idx].next_free;
    return idx;
  }
  transfers_.emplace_back();
  return static_cast<std::uint32_t>(transfers_.size() - 1);
}

void Network::release_transfer(std::uint32_t idx) {
  Transfer& t = transfers_[idx];
  t.payload.reset();
  t.arrived = false;
  t.next_free = transfer_free_;
  transfer_free_ = idx;
}

std::uint32_t Network::acquire_transfer_in(ShardState& s) {
  if (s.transfer_free != kNilTransfer) {
    const std::uint32_t idx = s.transfer_free;
    s.transfer_free = s.transfers[idx].next_free;
    return idx;
  }
  s.transfers.emplace_back();
  return static_cast<std::uint32_t>(s.transfers.size() - 1);
}

void Network::release_transfer_in(ShardState& s, std::uint32_t idx) {
  Transfer& t = s.transfers[idx];
  t.payload.reset();
  t.arrived = false;
  t.next_free = s.transfer_free;
  s.transfer_free = idx;
}

void Network::send(EndpointId from, EndpointId to, Payload payload,
                   std::size_t wire_bytes) {
  if (from >= endpoints_.size() || to >= endpoints_.size()) {
    throw std::out_of_range("Network::send: unknown endpoint");
  }
  if (from == to) {
    throw std::invalid_argument("Network::send: self-send not modelled");
  }
  const std::size_t bytes = wire_bytes != 0 ? wire_bytes : payload->size();

  // Impairment plane: one verdict per message, drawn from the plane's own
  // RNG substreams (so an idle plane leaves the trace untouched).
  LinkVerdict verdict;
  if (impairment_ != nullptr) impairment_->apply(from, to, bytes, verdict);
  SimDuration tx = transmission_delay(bytes, config_.link_bps);
  if (verdict.tx_scale != 1.0) {
    tx = std::max<SimDuration>(
        1, static_cast<SimDuration>(static_cast<double>(tx) *
                                    verdict.tx_scale));
  }

  Endpoint& src = endpoints_[from];
  const SimTime now = context_now(from);

  // Uplink serialization (FIFO behind any queued transmissions).
  const SimTime up_start = std::max(now, src.uplink_free);
  const SimTime up_end = up_start + tx;
  src.uplink_free = up_end;
  src.stats.messages_sent++;
  src.stats.bytes_sent += bytes;
  RAC_TELEM_COUNT(kNetMessagesSent, 1);
  RAC_TELEM_COUNT(kNetBytesSent, bytes);
  RAC_TELEM_HIST(kNetUplinkWaitNs, up_start - now);

  if (shards_.empty()) {
    total_bytes_ += bytes;
    if (tap_) tap_(from, to, bytes, now);

    // Dropped messages occupy the uplink but never arrive (tail drop after
    // the bottleneck).
    if (verdict.drop) {
      ++messages_lost_;
      RAC_TELEM_COUNT(kNetMessagesDropped, 1);
      return;
    }

    // Fast path: all per-message state goes into one pooled Transfer
    // record; the scheduled closure captures just {this, index}. Downlink
    // occupancy is still computed lazily at arrival time (inside
    // on_transfer_event) so FIFO order across senders follows arrival
    // order, exactly as before.
    const std::uint32_t idx = acquire_transfer();
    Transfer& t = transfers_[idx];
    t.payload = std::move(payload);
    t.tx = tx;
    t.bytes = bytes;
    t.from = from;
    t.to = to;

    const auto fire = [this, idx] { on_transfer_event(idx); };
    static_assert(InplaceCallback::fits_inline<decltype(fire)>,
                  "Network transfer closure must not allocate");
    sim_.schedule_at(up_end + config_.propagation + verdict.extra_delay,
                     fire);
    return;
  }

  // Sharded path: everything above touched only sender-owned state; the
  // arrival side happens at the next barrier. Accounting goes to the
  // sender's shard slice so no shared counter is written mid-window.
  ShardState& s = shards_[shard_of(from)];
  s.total_bytes += bytes;
  const SimTime arrival = up_end + config_.propagation + verdict.extra_delay;
  if (tap_) {
    // The tap sees dropped messages too (the classic path taps before the
    // drop check), so it keeps its own per-sender sequence counter —
    // send_seq never advances for drops. `arrival` is only the merge key.
    s.tapbox.push_back(TapEntry{arrival, now, bytes, from, to,
                                src.tap_seq++});
  }
  if (verdict.drop) {
    ++s.messages_lost;
    RAC_TELEM_COUNT(kNetMessagesDropped, 1);
    return;
  }

  // Conservative-schedule guard: the lookahead promises every message at
  // least one full window of latency. An impairment whose verdict lands
  // the arrival before the sender's next window boundary lied in
  // min_extra_delay() and would let a shard see the past.
  const SimTime bound = (now / window_len_ + 1) * window_len_;
  if (arrival < bound) {
    throw std::logic_error(
        "Network::send: lookahead violation — impairment returned a "
        "verdict below its declared min_extra_delay");
  }
  s.outbox[shard_of(to)].push_back(MailEntry{std::move(payload), arrival,
                                             now, tx, bytes, from, to,
                                             src.send_seq++});
}

void Network::drain_mailboxes() {
  if (tap_) {
    tap_merge_buf_.clear();
    for (ShardState& s : shards_) {
      tap_merge_buf_.insert(tap_merge_buf_.end(), s.tapbox.begin(),
                            s.tapbox.end());
      s.tapbox.clear();
    }
    // merge-order: canonical key (arrival, sent, from, from_seq), the same
    // contract as the mailbox merge below. Window boundaries are multiples
    // of the K-independent lookahead and partition tap records by `sent`,
    // so per-barrier record sets and this sort are identical for every
    // shard count — the tap consumer sees one canonical sequence.
    std::sort(tap_merge_buf_.begin(), tap_merge_buf_.end(),
              [](const TapEntry& a, const TapEntry& b) {
                if (a.arrival != b.arrival) return a.arrival < b.arrival;
                if (a.sent != b.sent) return a.sent < b.sent;
                if (a.from != b.from) return a.from < b.from;
                return a.from_seq < b.from_seq;
              });
    for (const TapEntry& e : tap_merge_buf_) {
      tap_(e.from, e.to, e.bytes, e.sent);
    }
    tap_merge_buf_.clear();
  }
  merge_buf_.clear();
  for (ShardState& s : shards_) {
    for (std::vector<MailEntry>& box : s.outbox) {
      merge_buf_.insert(merge_buf_.end(),
                        std::make_move_iterator(box.begin()),
                        std::make_move_iterator(box.end()));
      box.clear();
    }
  }
  // merge-order: canonical key (arrival, sent, from, from_seq). Every
  // component is shard-count-independent and (from, from_seq) is unique
  // per message, so the merged schedule order — and therefore each
  // destination engine's same-timestamp tie-break — is identical for any
  // K, which is what makes traces bit-identical across shard counts.
  std::sort(merge_buf_.begin(), merge_buf_.end(),
            [](const MailEntry& a, const MailEntry& b) {
              if (a.arrival != b.arrival) return a.arrival < b.arrival;
              if (a.sent != b.sent) return a.sent < b.sent;
              if (a.from != b.from) return a.from < b.from;
              return a.from_seq < b.from_seq;
            });
  for (MailEntry& m : merge_buf_) {
    const unsigned shard = shard_of(m.to);
    ShardState& d = shards_[shard];
    const std::uint32_t idx = acquire_transfer_in(d);
    Transfer& t = d.transfers[idx];
    t.payload = std::move(m.payload);
    t.tx = m.tx;
    t.bytes = m.bytes;
    t.from = m.from;
    t.to = m.to;
    const auto fire = [this, shard, idx] {
      on_shard_transfer_event(shard, idx);
    };
    static_assert(InplaceCallback::fits_inline<decltype(fire)>,
                  "Network shard transfer closure must not allocate");
    d.engine->schedule_at(m.arrival, fire);
  }
  merge_buf_.clear();
}

void Network::on_shard_transfer_event(unsigned shard, std::uint32_t idx) {
  ShardState& s = shards_[shard];
  Transfer& t = s.transfers[idx];
  Simulator& eng = *s.engine;
  if (!t.arrived) {
    // Arrival at the destination downlink after propagation; FIFO there —
    // both the downlink bookkeeping and the delivery event are local to
    // the destination's shard.
    t.arrived = true;
    Endpoint& d = endpoints_[t.to];
    const SimTime down_start = std::max(eng.now(), d.downlink_free);
    const SimTime down_end = down_start + t.tx;
    d.downlink_free = down_end;
    RAC_TELEM_HIST(kNetDownlinkWaitNs, down_start - eng.now());
    eng.schedule_at(down_end,
                    [this, shard, idx] { on_shard_transfer_event(shard, idx); });
    return;
  }
  // Delivery. Same slot-before-handler discipline as the classic path.
  const EndpointId from = t.from;
  const EndpointId to = t.to;
  const std::size_t bytes = t.bytes;
  const Payload payload = std::move(t.payload);
  release_transfer_in(s, idx);
  Endpoint& dd = endpoints_[to];
  dd.stats.messages_received++;
  dd.stats.bytes_received += bytes;
  dd.handler(from, payload);
}

void Network::on_transfer_event(std::uint32_t idx) {
  Transfer& t = transfers_[idx];
  if (!t.arrived) {
    // Arrival at the destination downlink after propagation; FIFO there.
    // The same pooled record re-arms for the delivery event — one transfer
    // object, two kernel firings, zero allocations.
    t.arrived = true;
    Endpoint& d = endpoints_[t.to];
    const SimTime down_start = std::max(sim_.now(), d.downlink_free);
    const SimTime down_end = down_start + t.tx;
    d.downlink_free = down_end;
    RAC_TELEM_HIST(kNetDownlinkWaitNs, down_start - sim_.now());
    sim_.schedule_at(down_end, [this, idx] { on_transfer_event(idx); });
    return;
  }
  // Delivery. Free the slot before invoking the handler: the handler may
  // send (reusing this very slot), and `transfers_` may grow meanwhile, so
  // copy out what we need first.
  const EndpointId from = t.from;
  const EndpointId to = t.to;
  const std::size_t bytes = t.bytes;
  const Payload payload = std::move(t.payload);
  release_transfer(idx);
  Endpoint& dd = endpoints_[to];
  dd.stats.messages_received++;
  dd.stats.bytes_received += bytes;
  dd.handler(from, payload);
}

SimTime Network::uplink_busy_until(EndpointId node) const {
  return std::max(context_now(node), endpoints_.at(node).uplink_free);
}

std::uint64_t Network::total_bytes() const {
  std::uint64_t total = total_bytes_;
  for (const ShardState& s : shards_) total += s.total_bytes;
  return total;
}

std::uint64_t Network::messages_lost() const {
  std::uint64_t total = messages_lost_;
  for (const ShardState& s : shards_) total += s.messages_lost;
  return total;
}

SimDuration Network::total_uplink_backlog() const {
  SimDuration total = 0;
  const SimTime now = sim_.now();
  for (const Endpoint& e : endpoints_) {
    if (e.uplink_free > now) total += e.uplink_free - now;
  }
  return total;
}

const LinkStats& Network::stats(EndpointId node) const {
  return endpoints_.at(node).stats;
}

}  // namespace rac::sim
