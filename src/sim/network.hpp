// Star-topology network model: every endpoint hangs off one router via a
// full-duplex access link (1 Gb/s in the paper's setup).
//
// Transmission model per unicast message of B bytes from a to b:
//   1. serialize on a's uplink  — FIFO, busy for B*8/C seconds,
//   2. propagate                — fixed one-way latency,
//   3. serialize on b's downlink — FIFO, busy for B*8/C seconds,
//   4. deliver to b's handler.
// The router itself is non-blocking (ideal switch), matching the paper's
// "ideal network configuration [to] measure the maximum throughput each
// protocol can reach".
//
// Payloads are shared immutably (shared_ptr<const Bytes>) so a broadcast to
// R successors costs pointer copies, not buffer copies.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "common/bytes.hpp"
#include "common/msg.hpp"
#include "sim/engine.hpp"

namespace rac::sim {

// Historical home of the message currency types; they now live in
// common/msg.hpp so the protocol core and the socket transport share them
// without touching the simulator. Re-exported for source compatibility.
using rac::EndpointId;
using rac::Payload;
using rac::make_payload;

// Message loss is not modelled here: install a LinkImpairment
// (src/faults/impairments.hpp) via Network::set_impairment, which keeps
// fault draws on their own RNG substream. (A deprecated loss_rate shim
// drawing from the simulator RNG lived here through PR 3; the migration
// to the impairment plane is complete and the shim is gone.)
struct NetworkConfig {
  double link_bps = 1e9;                   // access link capacity
  SimDuration propagation = 50 * kMicrosecond;  // one-way latency
};

/// Per-message verdict of the impairment plane. Defaults describe an
/// unimpaired link.
struct LinkVerdict {
  bool drop = false;             // message occupies the uplink but is lost
  SimDuration extra_delay = 0;   // added one-way latency (jitter)
  double tx_scale = 1.0;         // serialization-time multiplier (throttle)
};

/// Hook consulted once per Network::send with the link metadata. Fault
/// models (loss, jitter, throttles, partitions — see src/faults/) mutate
/// the verdict; the network applies it. Implementations must draw any
/// randomness from their own RNG substream, never from the simulator RNG,
/// so that an installed-but-inactive impairment leaves traces bit-identical
/// to an unimpaired run.
class LinkImpairment {
 public:
  virtual ~LinkImpairment() = default;
  virtual void apply(EndpointId from, EndpointId to, std::size_t bytes,
                     LinkVerdict& verdict) = 0;

  /// Lower bound on LinkVerdict::extra_delay over every future apply()
  /// (<= 0; jitter-only impairments return 0). The sharded kernel's
  /// lookahead is min-tx + propagation + min(0, min_extra_delay()), so an
  /// impairment that can *shorten* latency must declare it here — a
  /// verdict below the declared bound trips the lookahead-violation guard
  /// in Network::send.
  virtual SimDuration min_extra_delay() const { return 0; }

  /// Hint that endpoints [0, n) exist. Impairments that keep per-endpoint
  /// RNG substreams pre-size their tables here, so apply() never grows a
  /// container — required for data-race freedom when shard threads call
  /// apply() concurrently for endpoints they own.
  virtual void reserve_endpoints(std::size_t /*n*/) {}
};

struct LinkStats {
  std::uint64_t messages_sent = 0;
  std::uint64_t bytes_sent = 0;
  std::uint64_t messages_received = 0;
  std::uint64_t bytes_received = 0;
};

class Network {
 public:
  using Handler = std::function<void(EndpointId from, const Payload& msg)>;

  Network(Simulator& sim, NetworkConfig config);

  /// Register an endpoint; its handler fires on every delivery.
  EndpointId add_endpoint(Handler handler);
  std::size_t num_endpoints() const { return endpoints_.size(); }

  /// Queue a unicast. `wire_bytes` normally equals payload size but can be
  /// overridden to model framing (0 = use payload size).
  void send(EndpointId from, EndpointId to, Payload payload,
            std::size_t wire_bytes = 0);

  /// Absolute time at which `node`'s uplink finishes its current backlog
  /// (== now when idle). Protocol nodes use this for saturation pacing.
  SimTime uplink_busy_until(EndpointId node) const;

  /// Outstanding uplink serialization backlog summed over all endpoints,
  /// in nanoseconds (a queue-depth proxy probed by the telemetry sampler).
  SimDuration total_uplink_backlog() const;

  /// Wire tap: invoked for every message with the link metadata a global
  /// passive opponent can see (endpoints, size, send time — never the
  /// plaintext). Used by analysis::GlobalObserver and the attack plane
  /// (src/attacks/). Classic mode fires the tap synchronously at send
  /// time; sharded mode parks per-shard tap records and fires them at the
  /// next window barrier in canonical (arrival, sent, from, from_seq)
  /// order, so the tap sequence is identical for every shard count K >= 1
  /// (though it differs from the classic-mode sequence, exactly like the
  /// kernels' traces — consumers must not assume cross-kernel identity).
  using Tap = std::function<void(EndpointId from, EndpointId to,
                                 std::size_t bytes, SimTime when)>;
  void set_tap(Tap tap);

  /// Install (or clear, with nullptr) the impairment plane. Non-owning;
  /// the impairment must outlive the network or be cleared first.
  void set_impairment(LinkImpairment* impairment) {
    impairment_ = impairment;
    if (impairment_ != nullptr) {
      impairment_->reserve_endpoints(endpoints_.size());
    }
  }
  LinkImpairment* impairment() const { return impairment_; }

  // --- Sharded mode (conservative windowed kernel, src/sim/shard.hpp). ---
  //
  // enable_sharding(engines) partitions endpoints across K = engines.size()
  // shard engines (endpoint e belongs to engine e % K) and reroutes every
  // send through a per-(src,dst)-shard mailbox: the sender's shard does the
  // uplink FIFO bookkeeping locally, and the arrival event is scheduled on
  // the destination's engine only at the next window barrier, by
  // drain_mailboxes(), after a canonical sort. Endpoint state stays in the
  // one shared `endpoints_` vector, but during a window each field is
  // touched only by its owner shard (uplink side by `e % K`'s thread,
  // downlink side likewise), so windows run data-race free without locks.

  /// Switch to the sharded send path. Call once, before any traffic; the
  /// engines must outlive the network.
  void enable_sharding(std::vector<Simulator*> engines);
  bool sharded() const { return !shards_.empty(); }
  unsigned num_shards() const {
    return static_cast<unsigned>(shards_.size());
  }
  /// Current conservative window length L: any message sent at time t
  /// arrives at or after the next multiple of L, because the cheapest
  /// possible trip is min-tx (1 ns) + propagation + the impairment plane's
  /// declared extra-delay lower bound.
  SimDuration lookahead() const { return window_len_; }
  /// Recompute lookahead() from the config and the installed impairment
  /// plane (call after set_impairment, before running windows).
  void refresh_lookahead();
  /// Move every mailbox entry onto its destination engine. Coordinator
  /// only, at a window barrier (all engines quiescent at the same time).
  void drain_mailboxes();

  const LinkStats& stats(EndpointId node) const;
  /// Total bytes offered to the network so far.
  std::uint64_t total_bytes() const;
  /// Messages dropped by the impairment plane.
  std::uint64_t messages_lost() const;

 private:
  struct Endpoint {
    Handler handler;
    SimTime uplink_free = 0;
    SimTime downlink_free = 0;
    LinkStats stats;
    /// Messages sent so far (sharded mode): the per-sender sequence number
    /// in the canonical mailbox merge key.
    std::uint64_t send_seq = 0;
    /// Tap records emitted so far (sharded mode, tap installed). A
    /// separate counter from send_seq because the tap also sees dropped
    /// messages, which never reach a mailbox.
    std::uint64_t tap_seq = 0;
  };

  /// One in-flight message. Both kernel events of a transfer (arrival at
  /// the destination downlink, then delivery after downlink serialization)
  /// share this pooled record, so the scheduled closures capture only
  /// {Network*, index} and the payload handle is copied exactly once per
  /// send. Slots recycle through a free list: steady-state traffic does
  /// zero allocations here.
  struct Transfer {
    Payload payload;
    SimDuration tx = 0;
    std::size_t bytes = 0;
    EndpointId from = 0;
    EndpointId to = 0;
    std::uint32_t next_free = kNilTransfer;
    bool arrived = false;  // false: next event is arrival; true: delivery
  };
  static constexpr std::uint32_t kNilTransfer = 0xFFFF'FFFFu;

  std::uint32_t acquire_transfer();
  void release_transfer(std::uint32_t idx);
  /// Fires twice per message: once at arrival (downlink FIFO bookkeeping,
  /// re-arms itself at serialization end) and once at delivery.
  void on_transfer_event(std::uint32_t idx);

  /// One message parked in a shard mailbox between send time and the next
  /// window barrier. Carries everything needed to (a) sort canonically and
  /// (b) build the destination-side Transfer at the barrier.
  struct MailEntry {
    Payload payload;
    SimTime arrival;        // scheduled arrival at the destination downlink
    SimTime sent;           // sender-side send() time
    SimDuration tx;
    std::size_t bytes;
    EndpointId from;
    EndpointId to;
    std::uint64_t from_seq;  // sender's send_seq at send time
  };

  /// One wire-tap record parked in a shard tap buffer between send time
  /// and the next window barrier. `arrival` exists only as the leading
  /// component of the canonical merge key (it is computed even for
  /// dropped messages, which the tap must still report — the classic path
  /// taps before the drop check).
  struct TapEntry {
    SimTime arrival;
    SimTime sent;
    std::size_t bytes;
    EndpointId from;
    EndpointId to;
    std::uint64_t from_seq;  // sender's tap_seq at send time
  };

  /// Per-shard slice of the network. `transfers`/`transfer_free` mirror the
  /// global pool but are touched only by the owning shard's thread (and by
  /// the coordinator at barriers); `outbox[d]` is the SPSC mailbox toward
  /// shard d — written by this shard's thread during a window, drained by
  /// the coordinator at the barrier, never both at once.
  struct ShardState {
    Simulator* engine = nullptr;
    std::vector<Transfer> transfers;
    std::uint32_t transfer_free = kNilTransfer;
    std::uint64_t total_bytes = 0;
    std::uint64_t messages_lost = 0;
    std::vector<std::vector<MailEntry>> outbox;
    /// Wire-tap records for messages this shard's endpoints sent during
    /// the current window; merged and fired at the barrier.
    std::vector<TapEntry> tapbox;
  };

  unsigned shard_of(EndpointId ep) const {
    return static_cast<unsigned>(ep % shards_.size());
  }
  /// The simulated clock governing `ep`: its shard engine when sharded,
  /// else the driver engine. At a barrier all of these agree.
  SimTime context_now(EndpointId ep) const;
  std::uint32_t acquire_transfer_in(ShardState& s);
  void release_transfer_in(ShardState& s, std::uint32_t idx);
  /// Sharded twin of on_transfer_event, running on shard `shard`'s engine
  /// against its pool.
  void on_shard_transfer_event(unsigned shard, std::uint32_t idx);

  Simulator& sim_;
  NetworkConfig config_;
  std::vector<Endpoint> endpoints_;
  std::vector<Transfer> transfers_;
  std::uint32_t transfer_free_ = kNilTransfer;
  std::uint64_t total_bytes_ = 0;
  std::uint64_t messages_lost_ = 0;
  Tap tap_;
  LinkImpairment* impairment_ = nullptr;

  // Sharded-mode state (empty/0 in the classic single-engine mode).
  std::vector<ShardState> shards_;
  SimDuration window_len_ = 0;
  std::vector<MailEntry> merge_buf_;  // barrier scratch, capacity reused
  std::vector<TapEntry> tap_merge_buf_;  // barrier scratch, capacity reused
};

}  // namespace rac::sim
