// Measurement helpers for simulation experiments.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/time.hpp"

namespace rac::sim {

/// Accumulates delivered bytes and reports average goodput over a window.
/// Supports a warm-up cut so steady-state throughput excludes start-up
/// transients.
class ThroughputMeter {
 public:
  void record(SimTime when, std::uint64_t bytes);

  /// Move this meter's samples into `dst` and reset. The sharded kernel
  /// keeps one meter per shard and drains them into the shared meter at
  /// window barriers; every query below is an order-insensitive sum over a
  /// time range, so the drain order does not affect any reported value.
  void drain_into(ThroughputMeter& dst);

  /// Average bits/second between `from` and `to` (simulated time).
  double bits_per_second(SimTime from, SimTime to) const;
  std::uint64_t total_bytes() const { return total_bytes_; }
  std::uint64_t total_messages() const { return total_messages_; }

 private:
  struct Sample {
    SimTime when;
    std::uint64_t bytes;
  };
  std::vector<Sample> samples_;
  std::uint64_t total_bytes_ = 0;
  std::uint64_t total_messages_ = 0;
};

/// Simple online mean/min/max/count aggregate for latencies etc.
class Aggregate {
 public:
  void add(double v);
  std::uint64_t count() const { return count_; }
  double mean() const;
  double min() const { return min_; }
  double max() const { return max_; }

 private:
  std::uint64_t count_ = 0;
  double sum_ = 0;
  double min_ = 0;
  double max_ = 0;
};

/// Named counters for protocol events (messages forwarded, suspicions
/// raised, evictions, ...).
class Counters {
 public:
  void bump(const std::string& name, std::uint64_t delta = 1);
  std::uint64_t get(const std::string& name) const;
  const std::map<std::string, std::uint64_t>& all() const { return counts_; }

 private:
  std::map<std::string, std::uint64_t> counts_;
};

}  // namespace rac::sim
