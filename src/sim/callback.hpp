// InplaceCallback: a small-buffer-optimized, move-only `void()` callable.
//
// The DES kernel fires tens of millions of events per simulated second, and
// `std::function` pays a heap allocation per scheduled closure plus a copy
// whenever an event object is copied. InplaceCallback stores the callable
// inline when it fits the fixed budget (`kInlineSize`) and is move-only, so
// a scheduled closure can never be copied, only relocated between pooled
// event slots. The budget is deliberately tight: every closure on the
// simulation hot path (Network transfers, node slot timers, sweep timers)
// captures at most a few pointers/ids, and a small budget keeps the pooled
// event slots dense in cache.
//
// Callables larger than the budget (rare: driver-level lambdas capturing
// strings, etc.) are boxed on the heap transparently; the hot protocol path
// never takes that branch. `InplaceCallback::fits_inline<F>` lets hot call
// sites static_assert that their closures stay inline (see
// sim/network.cpp).
#pragma once

#include <cstddef>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>

namespace rac::sim {

class InplaceCallback {
 public:
  /// Inline storage budget. 24 bytes holds a this-pointer + a pooled-record
  /// index with room to spare for an extra id — the largest closures on
  /// the simulation hot path (Network transfers capture {Network*, index};
  /// node timers capture {Node*, token, epoch}) — and makes the whole
  /// object exactly 32 bytes: two pooled event slots per cache line,
  /// shift-indexable. Larger callables (driver-level lambdas capturing
  /// strings, etc.) are boxed on the heap transparently.
  static constexpr std::size_t kInlineSize = 24;
  static constexpr std::size_t kInlineAlign = 8;

  /// True when `F` is stored inline (no allocation on schedule).
  template <typename F>
  static constexpr bool fits_inline =
      sizeof(std::decay_t<F>) <= kInlineSize &&
      alignof(std::decay_t<F>) <= kInlineAlign &&
      std::is_nothrow_move_constructible_v<std::decay_t<F>>;

  InplaceCallback() = default;

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, InplaceCallback> &&
                std::is_invocable_r_v<void, std::decay_t<F>&>>>
  InplaceCallback(F&& f) {  // NOLINT(google-explicit-constructor)
    construct(std::forward<F>(f));
  }

  InplaceCallback(InplaceCallback&& other) noexcept : vt_(other.vt_) {
    if (vt_ != nullptr) {
      vt_->relocate(other.buf_, buf_);
      other.vt_ = nullptr;
    }
  }

  InplaceCallback& operator=(InplaceCallback&& other) noexcept {
    if (this != &other) {
      reset();
      vt_ = other.vt_;
      if (vt_ != nullptr) {
        vt_->relocate(other.buf_, buf_);
        other.vt_ = nullptr;
      }
    }
    return *this;
  }

  InplaceCallback(const InplaceCallback&) = delete;
  InplaceCallback& operator=(const InplaceCallback&) = delete;

  ~InplaceCallback() { reset(); }

  explicit operator bool() const { return vt_ != nullptr; }

  /// Destroy the current callable (if any) and construct `f` in place —
  /// one construction, no intermediate relocation. Used by the scheduler
  /// to build closures directly inside pooled event slots.
  template <typename F>
  void emplace(F&& f) {
    reset();
    if constexpr (std::is_same_v<std::decay_t<F>, InplaceCallback>) {
      *this = std::forward<F>(f);
    } else {
      construct(std::forward<F>(f));
    }
  }

  void operator()() { vt_->invoke(buf_); }

  void reset() {
    if (vt_ != nullptr) {
      vt_->destroy(buf_);
      vt_ = nullptr;
    }
  }

 private:
  struct VTable {
    void (*invoke)(void*);
    // Move-construct into `dst` from `src`, then destroy `src`.
    void (*relocate)(void* src, void* dst);
    void (*destroy)(void*);
  };

  template <typename F>
  void construct(F&& f) {
    using D = std::decay_t<F>;
    if constexpr (fits_inline<D>) {
      static constexpr VTable vt = {
          [](void* p) { (*std::launder(static_cast<D*>(p)))(); },
          [](void* src, void* dst) {
            D* s = std::launder(static_cast<D*>(src));
            ::new (dst) D(std::move(*s));
            s->~D();
          },
          [](void* p) { std::launder(static_cast<D*>(p))->~D(); },
      };
      ::new (static_cast<void*>(buf_)) D(std::forward<F>(f));
      vt_ = &vt;
    } else {
      // Oversized callable: box it. The inline slot holds only the
      // pointer, so relocation stays a trivial pointer move.
      using Box = D*;
      static constexpr VTable vt = {
          [](void* p) { (**std::launder(static_cast<Box*>(p)))(); },
          [](void* src, void* dst) {
            Box* s = std::launder(static_cast<Box*>(src));
            ::new (dst) Box(*s);
            s->~Box();
          },
          [](void* p) {
            Box* b = std::launder(static_cast<Box*>(p));
            delete *b;
            b->~Box();
          },
      };
      ::new (static_cast<void*>(buf_)) Box(new D(std::forward<F>(f)));
      vt_ = &vt;
    }
  }

  const VTable* vt_ = nullptr;
  alignas(kInlineAlign) unsigned char buf_[kInlineSize];
};

}  // namespace rac::sim
