#include "sim/stats.hpp"

#include <algorithm>
#include <stdexcept>

namespace rac::sim {

void ThroughputMeter::record(SimTime when, std::uint64_t bytes) {
  samples_.emplace_back(when, bytes);
  total_bytes_ += bytes;
  total_messages_++;
}

void ThroughputMeter::drain_into(ThroughputMeter& dst) {
  if (samples_.empty()) return;
  dst.samples_.insert(dst.samples_.end(), samples_.begin(), samples_.end());
  dst.total_bytes_ += total_bytes_;
  dst.total_messages_ += total_messages_;
  samples_.clear();
  total_bytes_ = 0;
  total_messages_ = 0;
}

double ThroughputMeter::bits_per_second(SimTime from, SimTime to) const {
  if (to <= from) throw std::invalid_argument("ThroughputMeter: empty window");
  std::uint64_t bytes = 0;
  for (const auto& s : samples_) {
    if (s.when >= from && s.when < to) bytes += s.bytes;
  }
  return static_cast<double>(bytes) * 8.0 / to_seconds(to - from);
}

void Aggregate::add(double v) {
  if (count_ == 0) {
    min_ = max_ = v;
  } else {
    min_ = std::min(min_, v);
    max_ = std::max(max_, v);
  }
  sum_ += v;
  ++count_;
}

double Aggregate::mean() const { return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_); }

void Counters::bump(const std::string& name, std::uint64_t delta) {
  counts_[name] += delta;
}

std::uint64_t Counters::get(const std::string& name) const {
  const auto it = counts_.find(name);
  return it == counts_.end() ? 0 : it->second;
}

}  // namespace rac::sim
