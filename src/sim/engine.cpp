#include "sim/engine.hpp"

#include <algorithm>
#include <bit>
#include <stdexcept>

#include "telemetry/telemetry.hpp"

namespace rac::sim {

bool Simulator::handle_before(const Handle& a, const Handle& b) {
  if (a.time != b.time) return a.time < b.time;
  return a.seq < b.seq;
}

Simulator::Simulator(std::uint64_t seed) : rng_(seed) {
  bucket_head_.fill(kNilNode);
}

void Simulator::throw_negative_delay() {
  throw std::invalid_argument("Simulator: negative delay");
}

void Simulator::throw_past_schedule() {
  throw std::invalid_argument("Simulator: schedule in the past");
}

std::uint32_t Simulator::acquire_slot() {
  if (!free_slots_.empty()) {
    const std::uint32_t idx = free_slots_.back();
    free_slots_.pop_back();
    return idx;
  }
  slots_.emplace_back();
  return static_cast<std::uint32_t>(slots_.size() - 1);
}

void Simulator::release_slot(std::uint32_t idx) {
  free_slots_.push_back(idx);
}

void Simulator::park_in_bucket(const Handle& h) {
  const auto b =
      static_cast<std::size_t>(h.time >> kBucketShift) & kWheelMask;
  std::uint32_t idx;
  if (!free_nodes_.empty()) {
    idx = free_nodes_.back();
    free_nodes_.pop_back();
  } else {
    idx = static_cast<std::uint32_t>(park_arena_.size());
    park_arena_.emplace_back();
  }
  const auto head = b * kChainsPerBucket + chain_of(h.time);
  park_arena_[idx].h = h;
  park_arena_[idx].next = bucket_head_[head];
  bucket_head_[head] = idx;
  occupancy_[b >> 6] |= std::uint64_t{1} << (b & 63);
  ++wheel_count_;
}

void Simulator::insert_handle(const Handle& h) {
  if (h.time < wheel_end_) {
    const std::int64_t page = h.time >> kBucketShift;
    if (page <= cursor_page_) {
      // Lands in the bucket being drained (e.g. an event scheduling a
      // follow-up at the same timestamp), or behind the cursor: peek() may
      // park the cursor on the *next* pending event's page — possibly far
      // ahead — while now_ lags behind, and driver code can then schedule
      // into that gap. Those events may have to fire before entries already
      // on the run list, so they go into the overflow min-heap that peek()
      // consults alongside cur_run_. (A sorted insert into cur_run_ would
      // be O(run length) per event — ruinous for dense buckets.)
      overflow_.push_back(h);
      std::push_heap(overflow_.begin(), overflow_.end(), HandleAfter{});
      ++wheel_count_;
    } else {
      park_in_bucket(h);
    }
  } else {
    heap_.push_back(h);
    std::push_heap(heap_.begin(), heap_.end(), HandleAfter{});
  }
}

void Simulator::migrate_from_heap() {
  while (!heap_.empty() && heap_.front().time < wheel_end_) {
    const Handle h = heap_.front();
    std::pop_heap(heap_.begin(), heap_.end(), HandleAfter{});
    heap_.pop_back();
    park_in_bucket(h);
  }
}

std::size_t Simulator::next_occupied_distance() const {
  // Circular scan for the first set bit strictly after the cursor bucket.
  const auto start =
      (static_cast<std::size_t>(cursor_page_) + 1) & kWheelMask;
  std::size_t w = start >> 6;
  std::uint64_t word = occupancy_[w] & (~std::uint64_t{0} << (start & 63));
  for (std::size_t probed = 0;; ++probed) {
    if (word != 0) {
      const std::size_t b =
          (w << 6) + static_cast<std::size_t>(std::countr_zero(word));
      return ((b - static_cast<std::size_t>(cursor_page_)) & kWheelMask) ==
                     0
                 ? kNumBuckets
                 : (b - static_cast<std::size_t>(cursor_page_)) & kWheelMask;
    }
    if (probed > occupancy_.size()) return kNumBuckets;  // unreachable
    w = (w + 1) & (occupancy_.size() - 1);
    word = occupancy_[w];
  }
}

const Simulator::Handle* Simulator::peek() {
  if (size_ == 0) return nullptr;
  for (;;) {
    if (run_pos_ < cur_run_.size()) {
      if (!overflow_.empty() &&
          handle_before(overflow_.front(), cur_run_[run_pos_])) {
        next_from_overflow_ = true;
        return &overflow_.front();
      }
      next_from_overflow_ = false;
      return &cur_run_[run_pos_];
    }
    if (!overflow_.empty()) {
      // Run list drained but late arrivals for this page remain.
      next_from_overflow_ = true;
      return &overflow_.front();
    }
    if (wheel_count_ == 0) {
      // Everything pending is beyond the wheel window: jump the cursor
      // straight to the earliest far timer instead of stepping through an
      // empty wheel.
      cursor_page_ = heap_.front().time >> kBucketShift;
    } else {
      // Hop directly to the next occupied bucket via the occupancy bitmap.
      cursor_page_ += static_cast<std::int64_t>(next_occupied_distance());
    }
    wheel_end_ = (cursor_page_ + static_cast<std::int64_t>(kNumBuckets))
                 << kBucketShift;
    migrate_from_heap();
    // Load the cursor bucket: every handle parked there belongs to this
    // page (events more than a wheel-span ahead go to the far heap, so
    // bucket indices never alias).
    const auto b = static_cast<std::size_t>(cursor_page_) & kWheelMask;
    occupancy_[b >> 6] &= ~(std::uint64_t{1} << (b & 63));
    run_pos_ = 0;
    load_bucket_into_run(b);
  }
}

void Simulator::load_bucket_into_run(std::size_t b) {
  // Walk the bucket's chains interleaved: each chain is an independent
  // dependent-load chase, so stepping all of them per iteration keeps
  // several cache misses in flight instead of serializing them. Nodes are
  // recycled as they are visited.
  std::uint32_t heads[kChainsPerBucket];
  for (unsigned c = 0; c < kChainsPerBucket; ++c) {
    heads[c] = bucket_head_[b * kChainsPerBucket + c];
    bucket_head_[b * kChainsPerBucket + c] = kNilNode;
    if (heads[c] != kNilNode) __builtin_prefetch(&park_arena_[heads[c]]);
    chain_buf_[c].clear();
  }
  for (bool any = true; any;) {
    any = false;
    for (unsigned c = 0; c < kChainsPerBucket; ++c) {
      const std::uint32_t idx = heads[c];
      if (idx == kNilNode) continue;
      const ParkedNode& nd = park_arena_[idx];
      chain_buf_[c].push_back(nd.h);
      free_nodes_.push_back(idx);
      heads[c] = nd.next;
      if (nd.next != kNilNode) __builtin_prefetch(&park_arena_[nd.next]);
      any = true;
    }
  }
  // Concatenate the chains reversed: each chain is LIFO, so reversing
  // restores scheduling (seq) order within it — and equal timestamps
  // always hash to the same chain, so tie order is globally correct going
  // into the stable sort below.
  scratch_.clear();
  for (unsigned c = 0; c < kChainsPerBucket; ++c) {
    for (std::size_t i = chain_buf_[c].size(); i-- > 0;) {
      scratch_.push_back(chain_buf_[c][i]);
    }
  }
  const std::size_t n = scratch_.size();
  // One histogram record per bucket *drain* (thousands of events apart),
  // not per event: kernel telemetry must stay off the dispatch hot loop.
  if (internal_telemetry_) {
    RAC_TELEM_HIST(kEngineBucketDrain, n);
  }
  if (n <= 24) {
    // Small runs: (time, seq) is a total order, so a comparison sort needs
    // no stability and beats the radix counter overhead.
    cur_run_.assign(scratch_.begin(), scratch_.end());
    std::sort(cur_run_.begin(), cur_run_.end(), handle_before);
    return;
  }
  // Every handle in a bucket shares the page bits, so ordering by time is
  // ordering by the kBucketShift-bit in-page offset. Two stable counting
  // passes (low 7 bits, then high 6) sort by time; stability preserves the
  // per-chain seq order of equal timestamps. A cheap is_sorted check plus
  // per-tie-run repair guards the rare case where a heap migration
  // interleaved with direct parks out of seq order.
  static_assert(kBucketShift == 13, "radix passes assume a 13-bit offset");
  cur_run_.resize(n);
  {
    std::uint32_t counts[128] = {};
    for (const Handle& h : scratch_) ++counts[h.time & 127];
    std::uint32_t pos = 0;
    for (std::uint32_t& c : counts) {
      const std::uint32_t k = c;
      c = pos;
      pos += k;
    }
    for (const Handle& h : scratch_) cur_run_[counts[h.time & 127]++] = h;
  }
  {
    std::uint32_t counts[64] = {};
    for (const Handle& h : cur_run_) ++counts[(h.time >> 7) & 63];
    std::uint32_t pos = 0;
    for (std::uint32_t& c : counts) {
      const std::uint32_t k = c;
      c = pos;
      pos += k;
    }
    for (const Handle& h : cur_run_) {
      scratch_[counts[(h.time >> 7) & 63]++] = h;
    }
  }
  cur_run_.swap(scratch_);
  if (!std::is_sorted(cur_run_.begin(), cur_run_.end(), handle_before)) {
    // Rare: equal-time entries parked out of seq order. Times are already
    // grouped, so sorting each equal-time run restores the total order.
    std::size_t i = 0;
    while (i < n) {
      std::size_t j = i + 1;
      while (j < n && cur_run_[j].time == cur_run_[i].time) ++j;
      if (j - i > 1) {
        std::sort(cur_run_.begin() + static_cast<std::ptrdiff_t>(i),
                  cur_run_.begin() + static_cast<std::ptrdiff_t>(j),
                  handle_before);
      }
      i = j;
    }
  }
}

void Simulator::execute_next() {
  Handle h;
  if (next_from_overflow_) {
    h = overflow_.front();
    std::pop_heap(overflow_.begin(), overflow_.end(), HandleAfter{});
    overflow_.pop_back();
  } else {
    h = cur_run_[run_pos_];
    ++run_pos_;
  }
  --wheel_count_;
  --size_;
  // Steal the closure before releasing the slot: the callback may schedule
  // (growing/reusing the pool) while it runs.
  InplaceCallback fn = std::move(slots_[h.slot]);
  release_slot(h.slot);
  // Hide the next slot's cache miss behind this event's execution. With a
  // large warm pool the slots are scattered, and the lookup below is the
  // drain loop's dominant stall without this.
  if (run_pos_ < cur_run_.size()) {
    __builtin_prefetch(&slots_[cur_run_[run_pos_].slot]);
  }
  now_ = h.time;
  ++events_processed_;
  fn();
}

bool Simulator::step() {
  if (peek() == nullptr) return false;
  execute_next();
  return true;
}

void Simulator::run_until(SimTime t) {
  // Re-peek after every event so boundary events that schedule more work
  // at exactly `t` still run before now_ advances to `t`.
  for (;;) {
    const Handle* h = peek();
    if (h == nullptr || h->time > t) break;
    execute_next();
  }
  if (now_ < t) now_ = t;
}

void Simulator::run_until_exclusive(SimTime t) {
  for (;;) {
    const Handle* h = peek();
    if (h == nullptr || h->time >= t) break;
    execute_next();
  }
  if (now_ < t) now_ = t;
}

void Simulator::run_to_completion() {
  while (step()) {
  }
}

}  // namespace rac::sim
