#include "sim/engine.hpp"

#include <stdexcept>

namespace rac::sim {

Simulator::Simulator(std::uint64_t seed) : rng_(seed) {}

void Simulator::schedule(SimDuration delay, std::function<void()> fn) {
  if (delay < 0) throw std::invalid_argument("Simulator: negative delay");
  schedule_at(now_ + delay, std::move(fn));
}

void Simulator::schedule_at(SimTime t, std::function<void()> fn) {
  if (t < now_) throw std::invalid_argument("Simulator: schedule in the past");
  queue_.push(Event{t, next_seq_++, std::move(fn)});
}

bool Simulator::step() {
  if (queue_.empty()) return false;
  // priority_queue::top returns const&; the handle must be moved out before
  // pop, so copy the small parts and steal the closure via const_cast-free
  // re-wrap: copy is acceptable for the function object here because we
  // std::move from a mutable copy of the top element.
  Event ev = queue_.top();
  queue_.pop();
  now_ = ev.time;
  ++events_processed_;
  ev.fn();
  return true;
}

void Simulator::run_until(SimTime t) {
  while (!queue_.empty() && queue_.top().time <= t) step();
  if (now_ < t) now_ = t;
}

void Simulator::run_to_completion() {
  while (step()) {
  }
}

}  // namespace rac::sim
