#include "baselines/flow_model.hpp"

#include <cmath>
#include <stdexcept>

namespace rac::baselines {

namespace {
void check(std::uint64_t n) {
  if (n < 2) throw std::invalid_argument("flow model: need n >= 2");
}
}  // namespace

double dissent_v1_goodput_bps(std::uint64_t n, const FlowParams& p) {
  check(n);
  return p.link_bps / (static_cast<double>(n) * static_cast<double>(n - 1));
}

double dissent_v2_goodput_bps_at(std::uint64_t n, std::uint64_t s,
                                 const FlowParams& p) {
  check(n);
  if (s == 0 || s > n) {
    throw std::invalid_argument("dissent_v2: bad server count");
  }
  const double transmissions = static_cast<double>(n) / static_cast<double>(s) +
                               static_cast<double>(s) - 1.0;
  return p.link_bps / (static_cast<double>(n) * transmissions);
}

std::uint64_t dissent_v2_optimal_servers(std::uint64_t n) {
  check(n);
  // Continuous optimum of N/S + S - 1 is S = sqrt(N); scan neighbours for
  // the integer argmin.
  const auto guess = static_cast<std::uint64_t>(
      std::llround(std::sqrt(static_cast<double>(n))));
  std::uint64_t best = 1;
  double best_cost = static_cast<double>(n);  // S=1: N + 0
  const std::uint64_t lo = guess > 3 ? guess - 3 : 1;
  const std::uint64_t hi = std::min<std::uint64_t>(n, guess + 3);
  for (std::uint64_t s = lo; s <= hi; ++s) {
    const double cost = static_cast<double>(n) / static_cast<double>(s) +
                        static_cast<double>(s) - 1.0;
    if (cost < best_cost) {
      best_cost = cost;
      best = s;
    }
  }
  return best;
}

double dissent_v2_goodput_bps(std::uint64_t n, const FlowParams& p) {
  return dissent_v2_goodput_bps_at(n, dissent_v2_optimal_servers(n), p);
}

double onion_goodput_bps(unsigned l, const FlowParams& p) {
  if (l == 0) throw std::invalid_argument("onion: need l >= 1");
  return p.link_bps / static_cast<double>(l);
}

double rac_goodput_bps(std::uint64_t n, unsigned l, unsigned r,
                       std::uint64_t g, const FlowParams& p) {
  check(n);
  if (l == 0 || r == 0) throw std::invalid_argument("rac: need l, r >= 1");
  if (g == 0 || g >= n) {
    // RAC-NoGroup: L*R*Bcast(N) copies, shared among N senders and N
    // forwarding uplinks => each node transmits L*R copies per message it
    // originates.
    return p.link_bps /
           (static_cast<double>(n) * static_cast<double>(l) * r);
  }
  // Grouped: k groups of size G. In-group messages cost L*R*Bcast(G);
  // cross-group ones (L-1)*R*Bcast(G) + R*Bcast(2G) = (L+1)*R*Bcast(G)
  // (channel copies split across both groups' uplinks).
  const double k = static_cast<double>(n) / static_cast<double>(g);
  const double cross_fraction = k <= 1.0 ? 0.0 : (k - 1.0) / k;
  const double copies_per_member =
      static_cast<double>(r) *
      (static_cast<double>(l) * (1.0 - cross_fraction) +
       static_cast<double>(l + 1) * cross_fraction);
  return p.link_bps / (static_cast<double>(g) * copies_per_member);
}

}  // namespace rac::baselines
