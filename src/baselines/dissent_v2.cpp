#include "baselines/dissent_v2.hpp"

#include <stdexcept>

#include "baselines/dcnet.hpp"
#include "baselines/flow_model.hpp"

namespace rac::baselines {

DissentV2Sim::DissentV2Sim(DissentV2Config config)
    : config_(config),
      num_servers_(config.num_servers != 0
                       ? config.num_servers
                       : static_cast<std::uint32_t>(
                             dissent_v2_optimal_servers(config.num_clients))),
      sim_(config.seed),
      rng_(config.seed ^ 0xD155E4702ULL) {
  if (config_.num_clients < 2) {
    throw std::invalid_argument("DissentV2Sim: need at least 2 clients");
  }
  if (num_servers_ > config_.num_clients) {
    throw std::invalid_argument("DissentV2Sim: more servers than clients");
  }
  net_ = std::make_unique<sim::Network>(sim_, config_.network);
  const std::uint32_t total = num_servers_ + config_.num_clients;
  for (std::uint32_t ep = 0; ep < total; ++ep) {
    net_->add_endpoint([this, ep](sim::EndpointId from,
                                  const sim::Payload& msg) {
      on_receive(ep, from, msg);
    });
  }
  clients_received_.resize(num_servers_, 0);
  combined_received_.resize(num_servers_, 0);
  own_combined_.resize(num_servers_);
  foreign_.resize(num_servers_);
  clients_per_server_.resize(num_servers_, 0);
  for (std::uint32_t c = 0; c < config_.num_clients; ++c) {
    clients_per_server_[home_server(c)]++;
  }
}

void DissentV2Sim::start() {
  running_ = true;
  begin_round();
}

void DissentV2Sim::run_to_target() {
  if (config_.rounds_target == 0) {
    throw std::logic_error("run_to_target: rounds_target not set");
  }
  while (rounds_completed_ < config_.rounds_target && sim_.step()) {
  }
}

void DissentV2Sim::begin_round() {
  if (!running_) return;
  const std::uint32_t owner =
      static_cast<std::uint32_t>(round_ % config_.num_clients);
  if (config_.full_crypto) owner_message_ = rng_.bytes(config_.msg_bytes);
  clients_done_ = 0;

  for (std::uint32_t s = 0; s < num_servers_; ++s) {
    clients_received_[s] = 0;
    combined_received_[s] = 0;
    if (config_.full_crypto) {
      // The server's own pad contribution covers every client it shares a
      // seed with — i.e. all of them.
      Bytes pads(config_.msg_bytes, 0);
      for (std::uint32_t c = 0; c < config_.num_clients; ++c) {
        xor_accumulate(pads, dcnet_pad(pair_seed(num_servers_ + c, s),
                                       round_, config_.msg_bytes));
      }
      own_combined_[s] = std::move(pads);
      foreign_[s].assign(config_.msg_bytes, 0);
    }
  }

  // Phase 1: every client uploads its ciphertext to its home server.
  for (std::uint32_t c = 0; c < config_.num_clients; ++c) {
    Bytes cipher = c == owner && config_.full_crypto
                       ? owner_message_
                       : Bytes(config_.msg_bytes, 0);
    if (config_.full_crypto) {
      for (std::uint32_t s = 0; s < num_servers_; ++s) {
        xor_accumulate(cipher, dcnet_pad(pair_seed(num_servers_ + c, s),
                                         round_, config_.msg_bytes));
      }
    }
    net_->send(num_servers_ + c, home_server(c),
               sim::make_payload(std::move(cipher)));
  }
}

void DissentV2Sim::on_receive(std::uint32_t ep, std::uint32_t from,
                              const sim::Payload& msg) {
  if (is_server(ep)) {
    if (is_server(from)) {
      if (config_.full_crypto) xor_accumulate(foreign_[ep], *msg);
      ++combined_received_[ep];
    } else {
      if (config_.full_crypto) xor_accumulate(own_combined_[ep], *msg);
      ++clients_received_[ep];
      if (clients_received_[ep] == clients_per_server_[ep]) {
        // Phase 2: exchange this server's combined blob (its pads XOR its
        // clients' ciphertexts) with every other server.
        const sim::Payload combined = sim::make_payload(
            config_.full_crypto ? own_combined_[ep]
                                : Bytes(config_.msg_bytes, 0));
        for (std::uint32_t s = 0; s < num_servers_; ++s) {
          if (s != ep) net_->send(ep, s, combined);
        }
      }
    }
    server_try_finish(ep);
  } else {
    // Phase 3 result arriving at a client.
    if (++clients_done_ == config_.num_clients) {
      meter_.record(sim_.now(), config_.msg_bytes);
      ++rounds_completed_;
      ++round_;
      if (config_.rounds_target != 0 &&
          rounds_completed_ >= config_.rounds_target) {
        running_ = false;
        return;
      }
      begin_round();
    }
  }
}

void DissentV2Sim::server_try_finish(std::uint32_t server) {
  if (clients_received_[server] != clients_per_server_[server] ||
      combined_received_[server] != num_servers_ - 1) {
    return;
  }
  Bytes plaintext;
  if (config_.full_crypto) {
    plaintext = own_combined_[server];
    xor_accumulate(plaintext, foreign_[server]);
    if (plaintext != owner_message_) ++decode_failures_;
  } else {
    plaintext.assign(config_.msg_bytes, 0);
  }
  // Phase 3: push the plaintext to this server's clients.
  const sim::Payload result = sim::make_payload(std::move(plaintext));
  for (std::uint32_t c = 0; c < config_.num_clients; ++c) {
    if (home_server(c) == server) net_->send(server, num_servers_ + c, result);
  }
  // Mark finished so duplicate calls (late messages) don't resend.
  clients_received_[server] = clients_per_server_[server] + 1;
}

double DissentV2Sim::avg_node_goodput_bps(SimTime from, SimTime to) const {
  return meter_.bits_per_second(from, to) /
         static_cast<double>(config_.num_clients);
}

}  // namespace rac::baselines
