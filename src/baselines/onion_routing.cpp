#include "baselines/onion_routing.hpp"

#include <stdexcept>

#include "common/serialize.hpp"

namespace rac::baselines {

namespace {
// Size-only wire format: u64 msg id + zero filler to msg_bytes.
std::uint64_t read_msg_id(const Bytes& wire) {
  BinaryReader r(wire);
  return r.u64();
}
}  // namespace

OnionRoutingSim::OnionRoutingSim(OnionRoutingConfig config)
    : config_(config), sim_(config.seed), rng_(config.seed ^ 0x023102ULL) {
  if (config_.num_nodes < config_.path_length + 2) {
    throw std::invalid_argument("OnionRoutingSim: too few nodes for path");
  }
  net_ = std::make_unique<sim::Network>(sim_, config_.network);
  for (std::uint32_t i = 0; i < config_.num_nodes; ++i) {
    net_->add_endpoint(
        [this, i](sim::EndpointId /*from*/, const sim::Payload& msg) {
          on_receive(i, msg);
        });
  }
  if (config_.full_crypto) {
    crypto_ = make_native_provider();
    keys_.reserve(config_.num_nodes);
    for (std::uint32_t i = 0; i < config_.num_nodes; ++i) {
      keys_.push_back(crypto_->generate_keypair(rng_));
    }
  }
  destination_.resize(config_.num_nodes);
  for (std::uint32_t i = 0; i < config_.num_nodes; ++i) {
    do {
      destination_[i] =
          static_cast<std::uint32_t>(rng_.next_below(config_.num_nodes));
    } while (destination_[i] == i);
  }
  msg_tx_ = transmission_delay(config_.msg_bytes, config_.network.link_bps);
}

void OnionRoutingSim::start() {
  running_ = true;
  for (std::uint32_t i = 0; i < config_.num_nodes; ++i) send_slot(i);
}

void OnionRoutingSim::schedule_send(std::uint32_t node) {
  if (!running_) return;
  const SimTime busy = net_->uplink_busy_until(node);
  const SimDuration backlog = busy - sim_.now();
  const SimDuration delay =
      backlog > 2 * msg_tx_ ? backlog - 2 * msg_tx_ : msg_tx_;
  sim_.schedule(delay, [this, node] {
    if (running_) send_slot(node);
  });
}

void OnionRoutingSim::send_slot(std::uint32_t node) {
  const SimTime busy = net_->uplink_busy_until(node);
  if (busy - sim_.now() <= 2 * msg_tx_) {
    // Pick L distinct relays (not self, not the destination).
    std::vector<std::uint32_t> relays;
    relays.reserve(config_.path_length);
    while (relays.size() < config_.path_length) {
      const auto r =
          static_cast<std::uint32_t>(rng_.next_below(config_.num_nodes));
      if (r == node || r == destination_[node]) continue;
      if (std::find(relays.begin(), relays.end(), r) != relays.end()) continue;
      relays.push_back(r);
    }

    if (config_.full_crypto) {
      // Innermost: payload for the destination; each layer above adds the
      // next hop.
      Bytes onion = crypto_->seal(keys_[destination_[node]].pub,
                                  rng_.bytes(config_.msg_bytes / 2), rng_);
      std::uint32_t next_hop = destination_[node];
      for (std::size_t i = relays.size(); i-- > 0;) {
        BinaryWriter w;
        w.u32(next_hop);
        w.blob(onion);
        onion = crypto_->seal(keys_[relays[i]].pub, w.data(), rng_);
        next_hop = relays[i];
      }
      net_->send(node, relays.front(), sim::make_payload(std::move(onion)));
    } else {
      const std::uint64_t id = rng_.next();
      BinaryWriter w;
      w.u64(id);
      Bytes wire = w.take();
      wire.resize(config_.msg_bytes, 0);
      std::vector<std::uint32_t> route(relays.begin() + 1, relays.end());
      route.push_back(destination_[node]);
      routes_.emplace(id, std::move(route));
      net_->send(node, relays.front(), sim::make_payload(std::move(wire)));
    }
  }
  schedule_send(node);
}

void OnionRoutingSim::on_receive(std::uint32_t node, const sim::Payload& msg) {
  if (config_.full_crypto) {
    const auto opened = crypto_->open(keys_[node], *msg);
    if (!opened) return;  // malformed: drop
    BinaryReader r(*opened);
    // A relay layer starts with a next-hop id + inner blob; the payload for
    // the destination is raw random bytes, so decoding fails there.
    try {
      const std::uint32_t next = r.u32();
      Bytes inner = r.blob();
      r.expect_done();
      if (next < config_.num_nodes) {
        net_->send(node, next, sim::make_payload(std::move(inner)));
        return;
      }
    } catch (const DecodeError&) {
      // fall through: this node is the destination
    }
    meter_.record(sim_.now(), config_.msg_bytes);
  } else {
    const std::uint64_t id = read_msg_id(*msg);
    const auto it = routes_.find(id);
    if (it == routes_.end()) return;
    if (it->second.empty()) {
      routes_.erase(it);
      meter_.record(sim_.now(), config_.msg_bytes);
      return;
    }
    const std::uint32_t next = it->second.front();
    it->second.erase(it->second.begin());
    net_->send(node, next, msg);
  }
}

double OnionRoutingSim::avg_node_goodput_bps(SimTime from, SimTime to) const {
  return meter_.bits_per_second(from, to) /
         static_cast<double>(config_.num_nodes);
}

}  // namespace rac::baselines
