// Dissent v2 baseline (Wolinsky et al., OSDI'12 — "Dissent in numbers"),
// packet-level: a client/server DC-net.
//
// Every client shares a DC-net seed with every server. Per round:
//   1. each client sends its message-sized ciphertext to its home server;
//   2. each server XORs its clients' ciphertexts with its own pads and
//      exchanges the combined blob with every other server;
//   3. each server recovers the plaintext and pushes it down to its
//      clients.
// Cost per round: Bcast(N/S) + S * Bcast(S) (Sec. III); the throughput-
// optimal S is picked per N as in the paper's Fig. 1 configuration.
#pragma once

#include <memory>
#include <vector>

#include "common/rng.hpp"
#include "sim/engine.hpp"
#include "sim/network.hpp"
#include "sim/stats.hpp"

namespace rac::baselines {

struct DissentV2Config {
  std::uint32_t num_clients = 100;
  std::uint32_t num_servers = 0;  // 0 = throughput-optimal for num_clients
  std::size_t msg_bytes = 10'000;
  bool full_crypto = true;
  std::uint32_t rounds_target = 0;
  sim::NetworkConfig network;
  std::uint64_t seed = 1;
};

class DissentV2Sim {
 public:
  explicit DissentV2Sim(DissentV2Config config);

  void start();
  void run_for(SimDuration d) { sim_.run_for(d); }
  void run_to_target();

  sim::Simulator& simulator() { return sim_; }
  std::uint32_t num_servers() const { return num_servers_; }
  std::uint64_t rounds_completed() const { return rounds_completed_; }
  const sim::ThroughputMeter& meter() const { return meter_; }
  /// Per *client* goodput — servers are infrastructure, as in the paper.
  double avg_node_goodput_bps(SimTime from, SimTime to) const;
  bool all_rounds_correct() const { return decode_failures_ == 0; }

 private:
  // Endpoint layout: [0, S) servers, [S, S + N) clients.
  bool is_server(std::uint32_t ep) const { return ep < num_servers_; }
  std::uint32_t client_index(std::uint32_t ep) const {
    return ep - num_servers_;
  }
  std::uint32_t home_server(std::uint32_t client) const {
    return client % num_servers_;
  }

  void begin_round();
  void on_receive(std::uint32_t ep, std::uint32_t from,
                  const sim::Payload& msg);
  void server_try_finish(std::uint32_t server);

  DissentV2Config config_;
  std::uint32_t num_servers_;
  sim::Simulator sim_;
  std::unique_ptr<sim::Network> net_;
  Rng rng_;
  sim::ThroughputMeter meter_;

  std::uint64_t round_ = 0;
  std::uint64_t rounds_completed_ = 0;
  std::uint64_t decode_failures_ = 0;
  Bytes owner_message_;
  // Per-server round state.
  std::vector<std::uint32_t> clients_received_;
  std::vector<std::uint32_t> combined_received_;
  std::vector<Bytes> own_combined_;  // pads ⊕ own clients' ciphertexts
  std::vector<Bytes> foreign_;       // XOR of other servers' combineds
  std::uint32_t clients_done_ = 0;
  std::vector<std::uint32_t> clients_per_server_;
  bool running_ = false;
};

}  // namespace rac::baselines
