#include "baselines/dissent_v1.hpp"

#include <stdexcept>

#include "baselines/dcnet.hpp"
#include "common/serialize.hpp"
#include "rac/shuffle.hpp"

namespace rac::baselines {

std::uint32_t DissentV1Sim::slot_owner() const {
  if (!config_.shuffle_scheduling) {
    return static_cast<std::uint32_t>(round_ % config_.num_nodes);
  }
  return slot_schedule_[round_ % config_.num_nodes];
}

void DissentV1Sim::reshuffle_schedule() {
  // Each member submits its identity; the accountable shuffle outputs an
  // unlinkable permutation that fixes slot ownership for the next epoch.
  auto provider = make_sim_provider();
  std::vector<Bytes> inputs;
  inputs.reserve(config_.num_nodes);
  for (std::uint32_t i = 0; i < config_.num_nodes; ++i) {
    BinaryWriter w;
    w.u32(i);
    inputs.push_back(w.take());
  }
  const ShuffleResult result = run_shuffle(*provider, rng_, inputs);
  if (!result.success) {
    throw std::logic_error("DissentV1Sim: honest shuffle failed");
  }
  slot_schedule_.clear();
  slot_schedule_.reserve(result.outputs.size());
  for (const Bytes& out : result.outputs) {
    BinaryReader r(out);
    slot_schedule_.push_back(r.u32());
  }
}

DissentV1Sim::DissentV1Sim(DissentV1Config config)
    : config_(config), sim_(config.seed), rng_(config.seed ^ 0xD155E47ULL) {
  if (config_.num_nodes < 3) {
    throw std::invalid_argument("DissentV1Sim: need at least 3 nodes");
  }
  net_ = std::make_unique<sim::Network>(sim_, config_.network);
  for (std::uint32_t i = 0; i < config_.num_nodes; ++i) {
    net_->add_endpoint([this, i](sim::EndpointId from,
                                 const sim::Payload& msg) {
      on_receive(i, from, msg);
    });
  }
  received_.resize(config_.num_nodes, 0);
  accumulator_.resize(config_.num_nodes);
}

void DissentV1Sim::start() {
  running_ = true;
  begin_round();
}

void DissentV1Sim::run_to_target() {
  if (config_.rounds_target == 0) {
    throw std::logic_error("run_to_target: rounds_target not set");
  }
  while (rounds_completed_ < config_.rounds_target && sim_.step()) {
  }
}

Bytes DissentV1Sim::make_ciphertext(std::uint32_t node) const {
  const std::uint32_t owner = slot_owner();
  if (!config_.full_crypto) return Bytes(config_.msg_bytes, 0);

  Bytes cipher = node == owner ? owner_message_
                               : Bytes(config_.msg_bytes, 0);
  for (std::uint32_t peer = 0; peer < config_.num_nodes; ++peer) {
    if (peer == node) continue;
    xor_accumulate(cipher,
                   dcnet_pad(pair_seed(node, peer), round_,
                             config_.msg_bytes));
  }
  return cipher;
}

void DissentV1Sim::begin_round() {
  if (!running_) return;
  const std::uint32_t n = config_.num_nodes;
  if (config_.shuffle_scheduling && round_ % n == 0) reshuffle_schedule();
  if (config_.full_crypto) {
    owner_message_ = rng_.bytes(config_.msg_bytes);
  }
  nodes_done_ = 0;
  for (std::uint32_t i = 0; i < n; ++i) {
    received_[i] = 0;
    // Each node starts its accumulator with its own ciphertext.
    Bytes cipher = make_ciphertext(i);
    if (config_.full_crypto) accumulator_[i] = cipher;
    const sim::Payload wire = sim::make_payload(std::move(cipher));
    for (std::uint32_t j = 0; j < n; ++j) {
      if (j != i) net_->send(i, j, wire);
    }
  }
}

void DissentV1Sim::on_receive(std::uint32_t node, std::uint32_t /*from*/,
                              const sim::Payload& msg) {
  if (config_.full_crypto) {
    xor_accumulate(accumulator_[node], *msg);
  }
  if (++received_[node] == config_.num_nodes - 1) node_completed(node);
}

void DissentV1Sim::node_completed(std::uint32_t node) {
  if (config_.full_crypto && accumulator_[node] != owner_message_) {
    ++decode_failures_;
  }
  if (++nodes_done_ < config_.num_nodes) return;

  // Round fully decoded everywhere: the owner's message reached its
  // (anonymous) destination — account one delivered message.
  meter_.record(sim_.now(), config_.msg_bytes);
  ++rounds_completed_;
  ++round_;
  if (config_.rounds_target != 0 &&
      rounds_completed_ >= config_.rounds_target) {
    running_ = false;
    return;
  }
  begin_round();
}

double DissentV1Sim::avg_node_goodput_bps(SimTime from, SimTime to) const {
  return meter_.bits_per_second(from, to) /
         static_cast<double>(config_.num_nodes);
}

}  // namespace rac::baselines
