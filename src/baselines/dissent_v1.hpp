// Dissent v1 baseline (Corrigan-Gibbs & Ford, CCS'10) — the DC-net bulk
// protocol, packet-level.
//
// Per round, one slot owner transmits anonymously: every node sends its
// DC-net ciphertext (message-sized) to every other node; XOR-ing all N
// ciphertexts reveals the owner's message at every node. This is the
// N * Bcast(N) cost of Sec. III, and why throughput collapses past ~50
// nodes (Fig. 1).
//
// `full_crypto = true` computes real pads/XOR so tests can assert round
// correctness; `false` ships size-equivalent zero buffers for larger-N
// throughput runs (the wire cost — what Figs. 1/3 measure — is identical).
#pragma once

#include <memory>
#include <vector>

#include "common/rng.hpp"
#include "sim/engine.hpp"
#include "sim/network.hpp"
#include "sim/stats.hpp"

namespace rac::baselines {

struct DissentV1Config {
  std::uint32_t num_nodes = 20;
  std::size_t msg_bytes = 10'000;
  bool full_crypto = true;
  std::uint32_t rounds_target = 0;  // stop after this many rounds (0 = none)
  /// Assign slot owners through the accountable anonymous shuffle (the
  /// actual Dissent v1 design: the shuffle phase fixes an owner
  /// permutation nobody can link to identities) instead of round-robin.
  /// One shuffle schedules the next num_nodes rounds.
  bool shuffle_scheduling = false;
  sim::NetworkConfig network;
  std::uint64_t seed = 1;
};

class DissentV1Sim {
 public:
  explicit DissentV1Sim(DissentV1Config config);

  void start();
  void run_for(SimDuration d) { sim_.run_for(d); }
  /// Run until rounds_target rounds completed (requires rounds_target > 0).
  void run_to_target();

  sim::Simulator& simulator() { return sim_; }
  std::uint64_t rounds_completed() const { return rounds_completed_; }
  const sim::ThroughputMeter& meter() const { return meter_; }
  double avg_node_goodput_bps(SimTime from, SimTime to) const;
  /// All nodes decoded every completed round to the owner's message
  /// (always true when full_crypto is off — nothing to check).
  bool all_rounds_correct() const { return decode_failures_ == 0; }

 private:
  void begin_round();
  void on_receive(std::uint32_t node, std::uint32_t from,
                  const sim::Payload& msg);
  Bytes make_ciphertext(std::uint32_t node) const;
  void node_completed(std::uint32_t node);
  std::uint32_t slot_owner() const;
  void reshuffle_schedule();

  DissentV1Config config_;
  sim::Simulator sim_;
  std::unique_ptr<sim::Network> net_;
  Rng rng_;
  sim::ThroughputMeter meter_;

  std::uint64_t round_ = 0;
  std::uint64_t rounds_completed_ = 0;
  std::uint64_t decode_failures_ = 0;
  Bytes owner_message_;              // expected plaintext this round
  std::vector<std::uint32_t> received_;  // per-node ciphertext count
  std::vector<Bytes> accumulator_;       // per-node XOR state (full crypto)
  std::uint32_t nodes_done_ = 0;
  bool running_ = false;
  std::vector<std::uint32_t> slot_schedule_;  // shuffle-scheduling mode
};

}  // namespace rac::baselines
