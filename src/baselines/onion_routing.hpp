// Plain onion routing baseline (Sec. II-B / the 200 Mb/s reference point of
// Sec. VI-C): no broadcast, no freerider resilience — each message travels
// sender -> relay_1 -> ... -> relay_L, the last relay being the exit that
// hands the payload to the destination.
//
// With full_crypto the onion is built with real sealed-box layers
// ({next-hop, inner} per layer) and peeled at every relay; otherwise the
// route is tracked driver-side and size-equivalent buffers travel.
#pragma once

#include <memory>
#include <unordered_map>
#include <vector>

#include "common/rng.hpp"
#include "crypto/provider.hpp"
#include "sim/engine.hpp"
#include "sim/network.hpp"
#include "sim/stats.hpp"

namespace rac::baselines {

struct OnionRoutingConfig {
  std::uint32_t num_nodes = 50;
  unsigned path_length = 5;  // L: relays per path
  std::size_t msg_bytes = 10'000;
  bool full_crypto = false;
  sim::NetworkConfig network;
  std::uint64_t seed = 1;
};

class OnionRoutingSim {
 public:
  explicit OnionRoutingSim(OnionRoutingConfig config);

  /// Every node streams messages to a fixed random destination at
  /// saturation (same workload as Sec. VI-C).
  void start();
  void run_for(SimDuration d) { sim_.run_for(d); }

  sim::Simulator& simulator() { return sim_; }
  const sim::ThroughputMeter& meter() const { return meter_; }
  double avg_node_goodput_bps(SimTime from, SimTime to) const;
  std::uint64_t messages_delivered() const { return meter_.total_messages(); }

 private:
  void send_slot(std::uint32_t node);
  void schedule_send(std::uint32_t node);
  void on_receive(std::uint32_t node, const sim::Payload& msg);

  OnionRoutingConfig config_;
  sim::Simulator sim_;
  std::unique_ptr<sim::Network> net_;
  std::unique_ptr<CryptoProvider> crypto_;
  Rng rng_;
  sim::ThroughputMeter meter_;

  std::vector<KeyPair> keys_;              // full-crypto relay keys
  std::vector<std::uint32_t> destination_; // fixed per sender
  // Size-only mode: msg id -> remaining route (next hops, then dest).
  std::unordered_map<std::uint64_t, std::vector<std::uint32_t>> routes_;
  SimDuration msg_tx_ = 0;
  bool running_ = false;
};

}  // namespace rac::baselines
