// DC-net primitives shared by the Dissent v1 and v2 baselines.
//
// A DC-net round combines per-pair pseudo-random pads by XOR: every pair
// sharing a seed contributes the same pad twice, so XOR-ing every
// participant's ciphertext cancels all pads and reveals the slot owner's
// message (Chaum's dining cryptographers, as used by both Dissent papers).
#pragma once

#include <cstdint>

#include "common/bytes.hpp"

namespace rac::baselines {

/// Symmetric 64-bit seed for the pair (a, b) — both sides derive the same
/// value (a production system would run a DH key agreement; the simulator
/// derives it from the pair identity).
std::uint64_t pair_seed(std::uint32_t a, std::uint32_t b);

/// Deterministic pad of `len` bytes for `round` under `seed`.
Bytes dcnet_pad(std::uint64_t seed, std::uint64_t round, std::size_t len);

/// XOR `pad` into `acc` (acc.size() == pad.size()).
void xor_accumulate(Bytes& acc, ByteView pad);

}  // namespace rac::baselines
