// Flow-level (fluid) throughput models for every protocol in Figs. 1 and 3.
//
// Derivation: on the paper's ideal star network every node has a full-
// duplex access link of capacity C. For each protocol we count how many
// link transmissions of one `msg_bytes` message the bottleneck link carries
// per delivered anonymous message; the sustainable per-node goodput is C
// divided by that count (x * Bcast(y) algebra of Secs. III/IV made
// concrete). The DES cross-validates these models at small N (see
// tests/test_flow_vs_des.cpp); the 100.000-node sweeps of the benches use
// them beyond packet-level reach.
#pragma once

#include <cstdint>

namespace rac::baselines {

struct FlowParams {
  double link_bps = 1e9;          // C: access link capacity
  std::size_t msg_bytes = 10'000; // anonymous message size (paper: 10 kB)
};

/// Dissent v1: every node sends its DC-net ciphertext to all others each
/// round; one round delivers one message. Per-node goodput = C / (N(N-1)).
double dissent_v1_goodput_bps(std::uint64_t n, const FlowParams& p = {});

/// Dissent v2 with S trusted servers: per round a server receives N/S
/// client ciphertexts, exchanges S-1 combined ciphertexts, and pushes the
/// result to N/S clients. Bottleneck (full-duplex server link):
/// N/S + S - 1 transmissions per round => goodput = C / (N (N/S + S - 1)).
double dissent_v2_goodput_bps_at(std::uint64_t n, std::uint64_t s,
                                 const FlowParams& p = {});

/// The throughput-optimal server count (argmax of the above, ~ sqrt(N)).
std::uint64_t dissent_v2_optimal_servers(std::uint64_t n);

/// Dissent v2 at its optimal server count ("we configure Dissent v2 with
/// the optimal number of trusted servers for each network size").
double dissent_v2_goodput_bps(std::uint64_t n, const FlowParams& p = {});

/// Onion routing with path length L: each message is transmitted L times
/// (paper, Sec. VI-C: "with an onion path length of 5, the throughput
/// provided by onion routing is 200Mb/s" = C/L).
double onion_goodput_bps(unsigned l, const FlowParams& p = {});

/// RAC. g == 0 or g >= n models RAC-NoGroup: cost L*R*Bcast(N) =>
/// goodput C / (N L R). Grouped: in-group traffic costs L*R*Bcast(G),
/// cross-group traffic (L+1)*R*Bcast(G); with k = N/G groups and uniform
/// random destinations a fraction (k-1)/k of traffic is cross-group.
double rac_goodput_bps(std::uint64_t n, unsigned l, unsigned r,
                       std::uint64_t g, const FlowParams& p = {});

}  // namespace rac::baselines
