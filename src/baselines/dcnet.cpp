#include "baselines/dcnet.hpp"

#include <algorithm>

#include "common/rng.hpp"

namespace rac::baselines {

std::uint64_t pair_seed(std::uint32_t a, std::uint32_t b) {
  const std::uint32_t lo = std::min(a, b);
  const std::uint32_t hi = std::max(a, b);
  std::uint64_t state =
      (static_cast<std::uint64_t>(lo) << 32) | (hi ^ 0xDCDC'0001u);
  return splitmix64(state);
}

Bytes dcnet_pad(std::uint64_t seed, std::uint64_t round, std::size_t len) {
  Bytes pad(len);
  std::uint64_t state = seed ^ (round * 0xA24BAED4963EE407ULL);
  std::size_t i = 0;
  while (i < len) {
    const std::uint64_t v = splitmix64(state);
    const std::size_t take = std::min<std::size_t>(8, len - i);
    for (std::size_t b = 0; b < take; ++b) {
      pad[i + b] = static_cast<std::uint8_t>(v >> (8 * b));
    }
    i += take;
  }
  return pad;
}

void xor_accumulate(Bytes& acc, ByteView pad) {
  xor_into(std::span<std::uint8_t>(acc.data(), acc.size()), pad);
}

}  // namespace rac::baselines
